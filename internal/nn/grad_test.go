package nn

import (
	"math"
	"math/rand"
	"testing"

	"seneca/internal/tensor"
)

// scalarLoss is a fixed random linear functional L(y) = Σ c·y used to turn a
// layer output into a scalar for finite-difference gradient checking.
type scalarLoss struct{ c *tensor.Tensor }

func newScalarLoss(rng *rand.Rand, shape []int) *scalarLoss {
	c := tensor.New(shape...)
	for i := range c.Data {
		c.Data[i] = float32(rng.NormFloat64())
	}
	return &scalarLoss{c: c}
}

func (s *scalarLoss) value(y *tensor.Tensor) float64 {
	var sum float64
	for i := range y.Data {
		sum += float64(s.c.Data[i]) * float64(y.Data[i])
	}
	return sum
}

// grad returns dL/dy = c.
func (s *scalarLoss) grad() *tensor.Tensor { return s.c.Clone() }

// checkGrad compares the analytic gradient of every parameter (and the
// input) against central finite differences (eps = 1e-3, relative error
// against max(1, |analytic|, |numeric|)).
//
// Per-layer tolerances. FP32 forward passes give central differences
// roughly sqrt(machine-eps) ≈ 3e-4 of headroom per accumulation, so the
// tolerance scales with how many values each output (and hence the probed
// derivative) accumulates:
//
//	ReLU, MaxPool, Dropout   1e-2  elementwise / routing only
//	Softmax                  2e-2  one reduction across channels
//	Conv2D, ConvTranspose2D  2e-2  InC·K² products per output
//	BatchNorm2D              3e-2  batch-wide mean/variance reductions
//
// Kinked or tied values (ReLU at 0, equal pool candidates) are kept away
// from the probe range by construction in each test.
func checkGrad(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))

	forward := func() *tensor.Tensor { return layer.Forward(x, true) }
	y := forward()
	loss := newScalarLoss(rng, y.Shape)

	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	gradIn := layer.Backward(loss.grad())

	const eps = 1e-3
	checkOne := func(name string, data []float32, analytic []float32, idx int) {
		t.Helper()
		orig := data[idx]
		data[idx] = orig + eps
		lp := loss.value(forward())
		data[idx] = orig - eps
		lm := loss.value(forward())
		data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		got := float64(analytic[idx])
		scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(got)))
		if math.Abs(numeric-got)/scale > tol {
			t.Errorf("%s[%d]: analytic %v vs numeric %v", name, idx, got, numeric)
		}
	}

	for _, p := range layer.Params() {
		n := p.Numel()
		stride := n/7 + 1 // probe a handful of entries
		for idx := 0; idx < n; idx += stride {
			checkOne(p.Name, p.Value.Data, p.Grad.Data, idx)
		}
	}
	n := x.Len()
	stride := n/7 + 1
	for idx := 0; idx < n; idx += stride {
		checkOne("input", x.Data, gradIn.Data, idx)
	}
}

func TestConv2DGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewConv2D("c", 2, 3, 3, 1, 1, rng, nil)
	x := tensor.New(2, 2, 5, 5)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	checkGrad(t, layer, x, 2e-2)
}

func TestConv2DStridedGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewConv2D("c", 1, 2, 3, 2, 1, rng, nil)
	x := tensor.New(1, 1, 6, 6)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	checkGrad(t, layer, x, 2e-2)
}

func TestConvTranspose2DGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewConvTranspose2D("ct", 3, 2, 3, 2, 1, 1, rng, nil)
	x := tensor.New(2, 3, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	checkGrad(t, layer, x, 2e-2)
}

func TestConvTranspose2DStride1Gradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	layer := NewConvTranspose2D("ct1", 2, 3, 3, 1, 1, 0, rng, nil)
	x := tensor.New(1, 2, 5, 5)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	checkGrad(t, layer, x, 2e-2)
}

func TestConvTranspose2DNoOutPadGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	layer := NewConvTranspose2D("ct0", 2, 2, 2, 2, 0, 0, rng, nil)
	x := tensor.New(2, 2, 3, 3)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	checkGrad(t, layer, x, 2e-2)
}

func TestBatchNormGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layer := NewBatchNorm2D("bn", 3)
	x := tensor.New(2, 3, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())*2 + 1
	}
	// Batch-norm's running-stat update makes repeated forwards non-idempotent
	// for the stats but the train-mode output only depends on batch stats,
	// so finite differencing is still valid.
	checkGrad(t, layer, x, 3e-2)
}

func TestBatchNormWarmedAffineGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	layer := NewBatchNorm2D("bnw", 2)
	// Move γ/β off their identity initialization so their gradient terms
	// are exercised with non-trivial values.
	for ch := 0; ch < 2; ch++ {
		layer.Gamma.Value.Data[ch] = 0.5 + float32(ch)
		layer.Beta.Value.Data[ch] = -0.25 * float32(ch+1)
	}
	// Warm the running statistics with a few train-mode passes: the
	// train-mode output still only depends on batch statistics, so finite
	// differencing stays valid, but Backward now runs on a layer whose
	// internal state matches mid-training reality.
	warm := tensor.New(2, 2, 3, 3)
	for pass := 0; pass < 3; pass++ {
		for i := range warm.Data {
			warm.Data[i] = float32(rng.NormFloat64())*3 - 2
		}
		layer.Forward(warm, true)
	}
	x := tensor.New(2, 2, 3, 3)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())*2 + 1
	}
	checkGrad(t, layer, x, 3e-2)
}

func TestReLUGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layer := NewReLU("r")
	x := tensor.New(1, 2, 4, 4)
	for i := range x.Data {
		// Keep values away from the kink where finite differences lie.
		v := float32(rng.NormFloat64())
		if v > -0.05 && v < 0.05 {
			v += 0.2
		}
		x.Data[i] = v
	}
	checkGrad(t, layer, x, 1e-2)
}

func TestMaxPoolGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layer := NewMaxPool2D("p")
	x := tensor.New(1, 2, 4, 4)
	perm := rng.Perm(len(x.Data))
	for i := range x.Data {
		// Distinct values so the argmax is stable under ±eps probing.
		x.Data[i] = float32(perm[i])
	}
	checkGrad(t, layer, x, 1e-2)
}

func TestMaxPoolNegativeGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	layer := NewMaxPool2D("pn")
	x := tensor.New(2, 1, 6, 6)
	perm := rng.Perm(len(x.Data))
	for i := range x.Data {
		// All-negative distinct values: the argmax must still route the
		// gradient (a ReLU-style "positive only" shortcut would zero it).
		x.Data[i] = -1 - float32(perm[i])
	}
	checkGrad(t, layer, x, 1e-2)
}

func TestDropoutPassthroughGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Rate 0 makes train-mode dropout the identity, so repeated forwards
	// are deterministic and the full finite-difference check applies. (At
	// rate > 0 each Forward consumes the layer's random stream, so the
	// mask changes between probes; that path is covered exactly, not
	// numerically, in TestDropoutTrainEval.)
	layer := NewDropout("d0", 0, 15)
	x := tensor.New(1, 2, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	checkGrad(t, layer, x, 1e-2)
}

func TestSoftmaxGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layer := NewSoftmax("s")
	x := tensor.New(1, 4, 3, 3)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	checkGrad(t, layer, x, 2e-2)
}

func TestDropoutTrainEval(t *testing.T) {
	d := NewDropout("d", 0.5, 42)
	x := tensor.New(1, 1, 32, 32)
	x.Fill(1)
	// Eval: identity.
	y := d.Forward(x, false)
	for _, v := range y.Data {
		if v != 1 {
			t.Fatalf("eval dropout must be identity, got %v", v)
		}
	}
	// Train: ~half zeroed, survivors scaled by 2.
	y = d.Forward(x, true)
	var zeros, twos int
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("dropout zero fraction %v, want ≈0.5", frac)
	}
	// Backward routes gradients through the same mask with the same
	// 1/(1-rate) scale: dL/dx = dL/dy · mask exactly.
	g := tensor.New(1, 1, 32, 32)
	g.Fill(1)
	gi := d.Backward(g)
	for i := range gi.Data {
		if gi.Data[i] != y.Data[i] {
			t.Fatalf("backward[%d] = %v, want mask value %v", i, gi.Data[i], y.Data[i])
		}
	}
	// After an eval forward the mask is cleared and Backward is the
	// identity — the inference-mode passthrough contract.
	d.Forward(x, false)
	gi = d.Backward(g)
	for i := range gi.Data {
		if gi.Data[i] != 1 {
			t.Fatalf("eval backward[%d] = %v, want 1", i, gi.Data[i])
		}
	}
}

func TestSGDMomentumStep(t *testing.T) {
	p := NewParam("w", 2)
	p.Value.Data[0] = 1
	p.Grad.Data[0] = 0.5
	opt := NewSGD(0.1, 0.9, 0)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.Value.Data[0])-0.95) > 1e-6 {
		t.Fatalf("after step w=%v, want 0.95", p.Value.Data[0])
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("Step must zero gradients")
	}
	// Second step with same grad includes momentum.
	p.Grad.Data[0] = 0.5
	opt.Step([]*Param{p})
	// v = 0.9*0.5 + 0.5 = 0.95; w = 0.95 - 0.1*0.95 = 0.855
	if math.Abs(float64(p.Value.Data[0])-0.855) > 1e-6 {
		t.Fatalf("after 2nd step w=%v, want 0.855", p.Value.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² with Adam; gradient = 2(w-3).
	p := NewParam("w", 1)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.Value.Data[0])-3) > 1e-2 {
		t.Fatalf("Adam converged to %v, want 3", p.Value.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 2)
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-5 {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	var sq float64
	for _, g := range p.Grad.Data {
		sq += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-4 {
		t.Fatalf("post-clip norm %v, want 1", math.Sqrt(sq))
	}
}

func TestHeNormalStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewParam("w", 64, 32, 3, 3)
	HeNormal{}.Init(rng, p, 32*9, 64*9)
	var sum, sq float64
	for _, v := range p.Value.Data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	n := float64(p.Numel())
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	want := math.Sqrt(2.0 / float64(32*9))
	if math.Abs(mean) > 0.01 {
		t.Fatalf("He init mean %v", mean)
	}
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("He init std %v, want %v", std, want)
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	conv := NewConv2D("c", 4, 8, 3, 1, 1, rng, nil)
	bn := NewBatchNorm2D("b", 8)
	got := ParamCount([]Layer{conv, bn})
	want := 8*4*3*3 + 8 + 8 + 8
	if got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}
