package nn

import (
	"fmt"

	"seneca/internal/par"
	"seneca/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor over the batch and
// spatial dimensions. At inference the running statistics are used; the
// SENECA compiler folds this layer into the preceding convolution before
// quantization (paper Section III-D/E).
type BatchNorm2D struct {
	LayerName string
	C         int
	Eps       float32
	Momentum  float32

	Gamma, Beta *Param
	RunningMean []float32
	RunningVar  []float32

	// Forward cache for the backward pass.
	lastXHat   *tensor.Tensor
	lastInvStd []float32
	lastShape  []int
}

// NewBatchNorm2D constructs a batch-normalization layer over c channels with
// gamma=1, beta=0, running statistics (0, 1).
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	b := &BatchNorm2D{
		LayerName:   name,
		C:           c,
		Eps:         1e-5,
		Momentum:    0.1,
		Gamma:       NewParam(name+".gamma", c),
		Beta:        NewParam(name+".beta", c),
		RunningMean: make([]float32, c),
		RunningVar:  make([]float32, c),
	}
	b.Gamma.Value.Fill(1)
	for i := range b.RunningVar {
		b.RunningVar[i] = 1
	}
	return b
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return b.LayerName }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != b.C {
		panic(fmt.Sprintf("nn: %s expects %d channels, got %v", b.LayerName, b.C, x.Shape))
	}
	hw := h * w
	out := tensor.New(n, c, h, w)
	if !train {
		par.For(c, func(ch int) {
			invStd := 1 / tensor.Sqrtf(b.RunningVar[ch]+b.Eps)
			g := b.Gamma.Value.Data[ch] * invStd
			bt := b.Beta.Value.Data[ch] - b.RunningMean[ch]*g
			for i := 0; i < n; i++ {
				src := x.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
				dst := out.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
				for j, v := range src {
					dst[j] = v*g + bt
				}
			}
		})
		return out
	}

	xhat := tensor.New(n, c, h, w)
	invStds := make([]float32, c)
	cnt := float32(n * hw)
	par.For(c, func(ch int) {
		var sum float64
		for i := 0; i < n; i++ {
			src := x.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			for _, v := range src {
				sum += float64(v)
			}
		}
		mean := float32(sum / float64(cnt))
		var vsum float64
		for i := 0; i < n; i++ {
			src := x.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			for _, v := range src {
				d := float64(v - mean)
				vsum += d * d
			}
		}
		variance := float32(vsum / float64(cnt))
		invStd := 1 / tensor.Sqrtf(variance+b.Eps)
		invStds[ch] = invStd
		b.RunningMean[ch] = (1-b.Momentum)*b.RunningMean[ch] + b.Momentum*mean
		b.RunningVar[ch] = (1-b.Momentum)*b.RunningVar[ch] + b.Momentum*variance
		g := b.Gamma.Value.Data[ch]
		bt := b.Beta.Value.Data[ch]
		for i := 0; i < n; i++ {
			src := x.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			xh := xhat.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			dst := out.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			for j, v := range src {
				nv := (v - mean) * invStd
				xh[j] = nv
				dst[j] = nv*g + bt
			}
		}
	})
	b.lastXHat = xhat
	b.lastInvStd = invStds
	b.lastShape = x.Shape
	return out
}

// Backward implements Layer using the standard batch-norm gradient:
//
//	dx = gamma·invStd/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train=true)", b.LayerName))
	}
	n, c, h, w := b.lastShape[0], b.lastShape[1], b.lastShape[2], b.lastShape[3]
	hw := h * w
	m := float32(n * hw)
	gradIn := tensor.New(n, c, h, w)
	par.For(c, func(ch int) {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			gy := grad.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			xh := b.lastXHat.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			for j, g := range gy {
				sumDy += float64(g)
				sumDyXhat += float64(g * xh[j])
			}
		}
		b.Gamma.Grad.Data[ch] += float32(sumDyXhat)
		b.Beta.Grad.Data[ch] += float32(sumDy)
		gamma := b.Gamma.Value.Data[ch]
		invStd := b.lastInvStd[ch]
		k := gamma * invStd / m
		sDy := float32(sumDy)
		sDyX := float32(sumDyXhat)
		for i := 0; i < n; i++ {
			gy := grad.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			xh := b.lastXHat.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			dst := gradIn.Data[(i*c+ch)*hw : (i*c+ch+1)*hw]
			for j, g := range gy {
				dst[j] = k * (m*g - sDy - xh[j]*sDyX)
			}
		}
	})
	// Release the cached normalized batch so a trained model held for
	// inference does not pin an N-image tensor.
	b.lastXHat = nil
	b.lastInvStd = nil
	return gradIn
}

// FoldInto returns the effective per-channel scale and shift that this layer
// applies at inference time (y = x·scale + shift), used by the compiler to
// fuse batch norm into the preceding convolution.
func (b *BatchNorm2D) FoldInto() (scale, shift []float32) {
	scale = make([]float32, b.C)
	shift = make([]float32, b.C)
	for ch := 0; ch < b.C; ch++ {
		invStd := 1 / tensor.Sqrtf(b.RunningVar[ch]+b.Eps)
		scale[ch] = b.Gamma.Value.Data[ch] * invStd
		shift[ch] = b.Beta.Value.Data[ch] - b.RunningMean[ch]*scale[ch]
	}
	return scale, shift
}
