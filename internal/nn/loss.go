package nn

import (
	"fmt"
	"math"

	"seneca/internal/par"
	"seneca/internal/tensor"
)

// Loss maps per-pixel class probabilities and ground-truth label maps to a
// scalar training loss and its gradient w.r.t. the probabilities.
//
// probs is NCHW (softmax output); labels is a flat [N*H*W] class-index map.
type Loss interface {
	// Forward evaluates the loss and caches what Backward needs.
	Forward(probs *tensor.Tensor, labels []uint8) float64
	// Backward returns dLoss/dProbs for the last Forward call.
	Backward() *tensor.Tensor
	// Name identifies the loss in logs and ablation tables.
	Name() string
}

// FocalTversky is the weighted Focal Tversky loss of paper Eq. (1)–(2):
//
//	FTL_w = (1 − Σ_c w_c·TI_c / Σ_c w_c)^γ
//	TI_c  = Σp·g / (Σp·g + α·Σ(1−p)·g + β·Σp·(1−g))
//
// with α=0.7, β=0.3 (false-negative/false-positive regularization, per [25])
// and γ=4/3 (within the suggested [1,3] range of [26]). Class weights w_c are
// inversely proportional to organ size to counter the CT-ORG class imbalance.
type FocalTversky struct {
	Alpha, Beta, Gamma float32
	// Weights holds one weight per class (including background at index 0).
	Weights []float32
	// Smooth is added to numerator and denominator so classes absent from a
	// batch contribute TI=1 instead of 0/0.
	Smooth float32

	lastProbs  *tensor.Tensor
	lastLabels []uint8
	lastNum    []float64
	lastDen    []float64
	lastS      float64
}

// NewFocalTversky constructs the paper's loss: α=0.7, β=0.3, γ=4/3.
func NewFocalTversky(weights []float32) *FocalTversky {
	return &FocalTversky{Alpha: 0.7, Beta: 0.3, Gamma: 4.0 / 3.0, Weights: weights, Smooth: 1}
}

// Name implements Loss.
func (f *FocalTversky) Name() string { return "focal-tversky" }

// Forward implements Loss.
func (f *FocalTversky) Forward(probs *tensor.Tensor, labels []uint8) float64 {
	n, c, h, w := probs.Shape[0], probs.Shape[1], probs.Shape[2], probs.Shape[3]
	hw := h * w
	if len(labels) != n*hw {
		panic(fmt.Sprintf("nn: focal-tversky labels length %d, want %d", len(labels), n*hw))
	}
	if len(f.Weights) != c {
		panic(fmt.Sprintf("nn: focal-tversky has %d weights for %d classes", len(f.Weights), c))
	}
	num := make([]float64, c)
	den := make([]float64, c)
	alpha := float64(f.Alpha)
	beta := float64(f.Beta)
	// Accumulate per class; parallel over classes since each class scans the
	// full tensor independently.
	par.For(c, func(cls int) {
		var tp, fn, fp float64
		for i := 0; i < n; i++ {
			plane := probs.Data[(i*c+cls)*hw : (i*c+cls+1)*hw]
			lab := labels[i*hw : (i+1)*hw]
			for j, p := range plane {
				pf := float64(p)
				if int(lab[j]) == cls {
					tp += pf
					fn += 1 - pf
				} else {
					fp += pf
				}
			}
		}
		num[cls] = tp
		den[cls] = tp + alpha*fn + beta*fp
	})
	var wsum, s float64
	sm := float64(f.Smooth)
	for cls := 0; cls < c; cls++ {
		wc := float64(f.Weights[cls])
		ti := (num[cls] + sm) / (den[cls] + sm)
		s += wc * ti
		wsum += wc
	}
	s /= wsum
	f.lastProbs = probs
	f.lastLabels = labels
	f.lastNum = num
	f.lastDen = den
	f.lastS = s
	loss := math.Pow(1-s, float64(f.Gamma))
	return loss
}

// Backward implements Loss.
func (f *FocalTversky) Backward() *tensor.Tensor {
	probs := f.lastProbs
	if probs == nil {
		panic("nn: focal-tversky Backward before Forward")
	}
	n, c, h, w := probs.Shape[0], probs.Shape[1], probs.Shape[2], probs.Shape[3]
	hw := h * w
	grad := tensor.New(n, c, h, w)
	var wsum float64
	for _, wc := range f.Weights {
		wsum += float64(wc)
	}
	// dL/dTI_c = −γ(1−S)^{γ−1} · w_c/Σw
	base := -float64(f.Gamma) * math.Pow(1-f.lastS, float64(f.Gamma)-1)
	alpha := float64(f.Alpha)
	beta := float64(f.Beta)
	sm := float64(f.Smooth)
	par.For(c, func(cls int) {
		dTI := base * float64(f.Weights[cls]) / wsum
		numS := f.lastNum[cls] + sm
		denS := f.lastDen[cls] + sm
		inv2 := 1 / (denS * denS)
		for i := 0; i < n; i++ {
			gplane := grad.Data[(i*c+cls)*hw : (i*c+cls+1)*hw]
			lab := f.lastLabels[i*hw : (i+1)*hw]
			for j := range gplane {
				// d num/dp and d den/dp for this pixel/class.
				var dnum, dden float64
				if int(lab[j]) == cls {
					dnum = 1
					dden = 1 - alpha // tp term + α·(1−p) term
				} else {
					dden = beta
				}
				dTIdp := (dnum*denS - numS*dden) * inv2
				gplane[j] = float32(dTI * dTIdp)
			}
		}
	})
	return grad
}

// CrossEntropy is the standard per-pixel negative log-likelihood loss,
// included for the loss-function ablation (paper Section III-C motivates the
// focal Tversky choice against it).
type CrossEntropy struct {
	// Weights optionally re-weights classes; nil means uniform.
	Weights []float32

	lastProbs  *tensor.Tensor
	lastLabels []uint8
}

// Name implements Loss.
func (ce *CrossEntropy) Name() string { return "cross-entropy" }

// Forward implements Loss.
func (ce *CrossEntropy) Forward(probs *tensor.Tensor, labels []uint8) float64 {
	n, c, h, w := probs.Shape[0], probs.Shape[1], probs.Shape[2], probs.Shape[3]
	hw := h * w
	total := par.ReduceSum(n*hw, func(j int) float64 {
		img := j / hw
		pix := j % hw
		cls := int(labels[j])
		p := float64(probs.Data[(img*c+cls)*hw+pix])
		if p < 1e-12 {
			p = 1e-12
		}
		wc := 1.0
		if ce.Weights != nil {
			wc = float64(ce.Weights[cls])
		}
		return -wc * math.Log(p)
	})
	ce.lastProbs = probs
	ce.lastLabels = labels
	_ = w
	return total / float64(n*hw)
}

// Backward implements Loss.
func (ce *CrossEntropy) Backward() *tensor.Tensor {
	probs := ce.lastProbs
	if probs == nil {
		panic("nn: cross-entropy Backward before Forward")
	}
	n, c, h, w := probs.Shape[0], probs.Shape[1], probs.Shape[2], probs.Shape[3]
	hw := h * w
	grad := tensor.New(n, c, h, w)
	inv := 1 / float64(n*hw)
	par.For(n*hw, func(j int) {
		img := j / hw
		pix := j % hw
		cls := int(ce.lastLabels[j])
		idx := (img*c+cls)*hw + pix
		p := float64(probs.Data[idx])
		if p < 1e-12 {
			p = 1e-12
		}
		wc := 1.0
		if ce.Weights != nil {
			wc = float64(ce.Weights[cls])
		}
		grad.Data[idx] = float32(-wc * inv / p)
	})
	_ = w
	return grad
}

// DiceLoss is 1 − mean soft Dice over classes — the unweighted, non-focal
// special case (α=β=0.5, γ=1, uniform weights) used as an ablation baseline.
type DiceLoss struct {
	ft *FocalTversky
}

// NewDiceLoss constructs the Dice ablation loss for c classes.
func NewDiceLoss(c int) *DiceLoss {
	w := make([]float32, c)
	for i := range w {
		w[i] = 1
	}
	return &DiceLoss{ft: &FocalTversky{Alpha: 0.5, Beta: 0.5, Gamma: 1, Weights: w, Smooth: 1}}
}

// Name implements Loss.
func (d *DiceLoss) Name() string { return "dice" }

// Forward implements Loss.
func (d *DiceLoss) Forward(probs *tensor.Tensor, labels []uint8) float64 {
	return d.ft.Forward(probs, labels)
}

// Backward implements Loss.
func (d *DiceLoss) Backward() *tensor.Tensor { return d.ft.Backward() }

// InverseFrequencyWeights derives the per-class loss weights the paper
// assigns "inversely proportional to the organ dimensions" (Section III-C):
// w_c ∝ 1/freq_c, normalized so the mean weight is 1. The background class
// (index 0) weight is damped by bgDamp (0 < bgDamp ≤ 1) because background
// dominates every slice yet is easy.
func InverseFrequencyWeights(freq []float64, bgDamp float64) []float32 {
	return InverseFrequencyWeightsPow(freq, bgDamp, 1)
}

// InverseFrequencyWeightsPow is InverseFrequencyWeights with a tempering
// exponent: w_c ∝ freq_c^−pow. pow=1 is the raw inverse; pow≈0.5 keeps the
// ordering (small organs weigh more) while preventing the rarest class from
// monopolizing the loss — necessary for stable training when the class
// imbalance spans two orders of magnitude.
func InverseFrequencyWeightsPow(freq []float64, bgDamp, pow float64) []float32 {
	w := make([]float64, len(freq))
	var sum float64
	for i, f := range freq {
		if f <= 0 {
			f = 1e-6
		}
		w[i] = math.Pow(f, -pow)
		if i == 0 {
			w[i] *= bgDamp
		}
		sum += w[i]
	}
	out := make([]float32, len(freq))
	mean := sum / float64(len(freq))
	for i := range w {
		out[i] = float32(w[i] / mean)
	}
	return out
}
