package nn

import (
	"fmt"
	"math/rand"

	"seneca/internal/tensor"
)

// Conv2D is a 2D convolution over NCHW tensors with weights shaped
// [Cout, Cin, KH, KW]. SENECA uses 3×3 kernels with stride 1 and "same"
// padding everywhere except the compiler-generated fused variants.
type Conv2D struct {
	LayerName          string
	InC, OutC          int
	Kernel             int
	Stride             int
	Pad                int
	Weight, Bias       *Param
	lastInput          *tensor.Tensor
	lastOutH, lastOutW int
}

// NewConv2D constructs a convolution layer and initializes its weights with
// init (He-normal when nil).
func NewConv2D(name string, inC, outC, kernel, stride, pad int, rng *rand.Rand, init Initializer) *Conv2D {
	c := &Conv2D{
		LayerName: name,
		InC:       inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad,
		Weight: NewParam(name+".weight", outC, inC, kernel, kernel),
		Bias:   NewParam(name+".bias", outC),
	}
	if init == nil {
		init = HeNormal{}
	}
	fanIn := inC * kernel * kernel
	fanOut := outC * kernel * kernel
	init.Init(rng, c.Weight, fanIn, fanOut)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutSize returns the spatial output size for an input of size in.
func (c *Conv2D) OutSize(in int) int { return tensor.ConvOutSize(in, c.Kernel, c.Stride, c.Pad) }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != c.InC {
		panic(fmt.Sprintf("nn: %s expects %d input channels, got %v", c.LayerName, c.InC, x.Shape))
	}
	oh := c.OutSize(h)
	ow := c.OutSize(w)
	out := tensor.New(n, c.OutC, oh, ow)
	ckk := c.InC * c.Kernel * c.Kernel
	cols := tensor.New(ckk, oh*ow)
	wmat := c.Weight.Value.Reshape(c.OutC, ckk)
	for i := 0; i < n; i++ {
		tensor.Im2Col(x.Data[i*ch*h*w:(i+1)*ch*h*w], ch, h, w, c.Kernel, c.Kernel, c.Stride, c.Stride, c.Pad, c.Pad, cols.Data, oh, ow)
		oi := tensor.FromSlice(out.Data[i*c.OutC*oh*ow:(i+1)*c.OutC*oh*ow], c.OutC, oh*ow)
		tensor.MatMulInto(oi, wmat, cols)
	}
	// Bias broadcast over spatial positions.
	hw := oh * ow
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			b := c.Bias.Value.Data[oc]
			if b == 0 {
				continue
			}
			row := out.Data[(i*c.OutC+oc)*hw : (i*c.OutC+oc+1)*hw]
			for j := range row {
				row[j] += b
			}
		}
	}
	if train {
		c.lastInput = x
		c.lastOutH, c.lastOutW = oh, ow
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	if x == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train=true)", c.LayerName))
	}
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := c.lastOutH, c.lastOutW
	ckk := c.InC * c.Kernel * c.Kernel
	hw := oh * ow

	cols := tensor.New(ckk, hw)
	colsGrad := tensor.New(ckk, hw)
	gwTmp := tensor.New(c.OutC, ckk)
	gradIn := tensor.New(n, ch, h, w)
	wmat := c.Weight.Value.Reshape(c.OutC, ckk)
	gw := c.Weight.Grad.Reshape(c.OutC, ckk)

	for i := 0; i < n; i++ {
		// Recompute the column matrix for this image (cheaper in memory than
		// caching N column matrices during the forward pass).
		tensor.Im2Col(x.Data[i*ch*h*w:(i+1)*ch*h*w], ch, h, w, c.Kernel, c.Kernel, c.Stride, c.Stride, c.Pad, c.Pad, cols.Data, oh, ow)
		gi := tensor.FromSlice(grad.Data[i*c.OutC*hw:(i+1)*c.OutC*hw], c.OutC, hw)
		// dW += gi · colsᵀ
		tensor.MatMulBTInto(gwTmp, gi, cols)
		gw.AddInPlace(gwTmp)
		// dCols = Wᵀ · gi, then scatter back to the input image.
		tensor.MatMulATInto(colsGrad, wmat, gi)
		tensor.Col2Im(colsGrad.Data, ch, h, w, c.Kernel, c.Kernel, c.Stride, c.Stride, c.Pad, c.Pad, gradIn.Data[i*ch*h*w:(i+1)*ch*h*w], oh, ow)
	}
	// dBias: sum of grad over batch and spatial dims per output channel.
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			row := grad.Data[(i*c.OutC+oc)*hw : (i*c.OutC+oc+1)*hw]
			var s float32
			for _, v := range row {
				s += v
			}
			c.Bias.Grad.Data[oc] += s
		}
	}
	// Release the cached batch: a model kept for inference after training
	// must not pin its last training input in memory.
	c.lastInput = nil
	return gradIn
}

// ConvTranspose2D is a fractionally-strided convolution used by the U-Net
// decoder for 2× upsampling (3×3 kernel, stride 2, pad 1, output padding 1).
// Weights are shaped [Cin, Cout, KH, KW].
type ConvTranspose2D struct {
	LayerName    string
	InC, OutC    int
	Kernel       int
	Stride       int
	Pad          int
	OutPad       int
	Weight, Bias *Param
	lastInput    *tensor.Tensor
}

// NewConvTranspose2D constructs a transpose-convolution layer.
func NewConvTranspose2D(name string, inC, outC, kernel, stride, pad, outPad int, rng *rand.Rand, init Initializer) *ConvTranspose2D {
	c := &ConvTranspose2D{
		LayerName: name,
		InC:       inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad, OutPad: outPad,
		Weight: NewParam(name+".weight", inC, outC, kernel, kernel),
		Bias:   NewParam(name+".bias", outC),
	}
	if init == nil {
		init = HeNormal{}
	}
	fanIn := inC * kernel * kernel
	fanOut := outC * kernel * kernel
	init.Init(rng, c.Weight, fanIn, fanOut)
	return c
}

// Name implements Layer.
func (c *ConvTranspose2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *ConvTranspose2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutSize returns the spatial output size for an input of size in.
func (c *ConvTranspose2D) OutSize(in int) int {
	return tensor.ConvTransposeOutSize(in, c.Kernel, c.Stride, c.Pad, c.OutPad)
}

// Forward implements Layer. A transpose convolution is the adjoint of a
// convolution: cols = Wᵀ·x followed by a col2im scatter into the (larger)
// output image.
func (c *ConvTranspose2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != c.InC {
		panic(fmt.Sprintf("nn: %s expects %d input channels, got %v", c.LayerName, c.InC, x.Shape))
	}
	oh := c.OutSize(h)
	ow := c.OutSize(w)
	out := tensor.New(n, c.OutC, oh, ow)
	ckk := c.OutC * c.Kernel * c.Kernel
	cols := tensor.New(ckk, h*w)
	wmat := c.Weight.Value.Reshape(c.InC, ckk)
	for i := 0; i < n; i++ {
		xi := tensor.FromSlice(x.Data[i*ch*h*w:(i+1)*ch*h*w], ch, h*w)
		tensor.MatMulATInto(cols, wmat, xi)
		// Scatter: the output plays the role of the conv "input image"; the
		// transpose conv's input positions are the conv's output positions.
		tensor.Col2Im(cols.Data, c.OutC, oh, ow, c.Kernel, c.Kernel, c.Stride, c.Stride, c.Pad, c.Pad, out.Data[i*c.OutC*oh*ow:(i+1)*c.OutC*oh*ow], h, w)
	}
	hw := oh * ow
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			b := c.Bias.Value.Data[oc]
			if b == 0 {
				continue
			}
			row := out.Data[(i*c.OutC+oc)*hw : (i*c.OutC+oc+1)*hw]
			for j := range row {
				row[j] += b
			}
		}
	}
	if train {
		c.lastInput = x
	}
	return out
}

// Backward implements Layer. The gradient w.r.t. the input of a transpose
// convolution is an ordinary convolution of the output gradient with the
// same weights; the weight gradient mirrors Conv2D's with the roles of input
// and output exchanged.
func (c *ConvTranspose2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastInput
	if x == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train=true)", c.LayerName))
	}
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := grad.Shape[2], grad.Shape[3]
	ckk := c.OutC * c.Kernel * c.Kernel
	hw := h * w

	colsB := tensor.New(ckk, hw)
	gwTmp := tensor.New(c.InC, ckk)
	gradIn := tensor.New(n, ch, h, w)
	wmat := c.Weight.Value.Reshape(c.InC, ckk)
	gw := c.Weight.Grad.Reshape(c.InC, ckk)

	for i := 0; i < n; i++ {
		// im2col over the *output gradient* at the conv geometry.
		tensor.Im2Col(grad.Data[i*c.OutC*oh*ow:(i+1)*c.OutC*oh*ow], c.OutC, oh, ow, c.Kernel, c.Kernel, c.Stride, c.Stride, c.Pad, c.Pad, colsB.Data, h, w)
		gi := tensor.FromSlice(gradIn.Data[i*ch*hw:(i+1)*ch*hw], ch, hw)
		// dX = W · cols(gradOut)
		tensor.MatMulInto(gi, wmat, colsB)
		// dW += x · cols(gradOut)ᵀ
		xi := tensor.FromSlice(x.Data[i*ch*hw:(i+1)*ch*hw], ch, hw)
		tensor.MatMulBTInto(gwTmp, xi, colsB)
		gw.AddInPlace(gwTmp)
	}
	ohw := oh * ow
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.OutC; oc++ {
			row := grad.Data[(i*c.OutC+oc)*ohw : (i*c.OutC+oc+1)*ohw]
			var s float32
			for _, v := range row {
				s += v
			}
			c.Bias.Grad.Data[oc] += s
		}
	}
	c.lastInput = nil
	return gradIn
}
