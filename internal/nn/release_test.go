package nn

import (
	"math/rand"
	"testing"

	"seneca/internal/tensor"
)

// TestBackwardReleasesActivationCaches is the regression test for the
// training-memory leak: every layer cached its forward activations for the
// backward pass and kept them alive indefinitely afterwards, so a model held
// for inference after training pinned a full training batch per layer. After
// Backward the caches must be gone, and inference-mode forwards must not
// repopulate them.
func TestBackwardReleasesActivationCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, c, h, w = 2, 4, 8, 8
	x := tensor.New(n, c, h, w)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}

	conv := NewConv2D("conv", c, c, 3, 1, 1, rng, nil)
	dconv := NewConvTranspose2D("dconv", c, c, 3, 2, 1, 1, rng, nil)
	bn := NewBatchNorm2D("bn", c)
	relu := NewReLU("relu")
	pool := NewMaxPool2D("pool")
	drop := NewDropout("drop", 0.3, 1)
	soft := NewSoftmax("soft")

	out := conv.Forward(x, true)
	out = bn.Forward(out, true)
	out = relu.Forward(out, true)
	out = drop.Forward(out, true)
	out = pool.Forward(out, true)
	out = dconv.Forward(out, true)
	out = soft.Forward(out, true)

	grad := tensor.New(out.Shape...)
	for i := range grad.Data {
		grad.Data[i] = float32(rng.NormFloat64())
	}
	g := soft.Backward(grad)
	g = dconv.Backward(g)
	g = pool.Backward(g)
	g = drop.Backward(g)
	g = relu.Backward(g)
	g = bn.Backward(g)
	conv.Backward(g)

	assertReleased := func(name string, gone bool) {
		t.Helper()
		if !gone {
			t.Errorf("%s still holds its forward-pass cache after Backward", name)
		}
	}
	assertReleased("Conv2D", conv.lastInput == nil)
	assertReleased("ConvTranspose2D", dconv.lastInput == nil)
	assertReleased("BatchNorm2D", bn.lastXHat == nil && bn.lastInvStd == nil)
	assertReleased("ReLU", relu.lastMask == nil)
	assertReleased("MaxPool2D", pool.lastArg == nil)
	assertReleased("Dropout", drop.lastMask == nil)
	assertReleased("Softmax", soft.lastOut == nil)

	// Inference-only forwards after training must not repopulate any cache.
	out = conv.Forward(x, false)
	out = bn.Forward(out, false)
	out = relu.Forward(out, false)
	out = drop.Forward(out, false)
	out = pool.Forward(out, false)
	out = dconv.Forward(out, false)
	soft.Forward(out, false)

	assertReleased("Conv2D (inference)", conv.lastInput == nil)
	assertReleased("ConvTranspose2D (inference)", dconv.lastInput == nil)
	assertReleased("BatchNorm2D (inference)", bn.lastXHat == nil)
	assertReleased("ReLU (inference)", relu.lastMask == nil)
	assertReleased("MaxPool2D (inference)", pool.lastArg == nil)
	assertReleased("Dropout (inference)", drop.lastMask == nil)
	assertReleased("Softmax (inference)", soft.lastOut == nil)
}
