package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"seneca/internal/tensor"
)

// randomProbs builds a valid probability tensor (softmax of random logits)
// and a random label map.
func randomProbs(rng *rand.Rand, n, c, h, w int) (*tensor.Tensor, []uint8) {
	logits := tensor.New(n, c, h, w)
	for i := range logits.Data {
		logits.Data[i] = float32(rng.NormFloat64())
	}
	labels := make([]uint8, n*h*w)
	for i := range labels {
		labels[i] = uint8(rng.Intn(c))
	}
	return tensor.SoftmaxChannels(logits), labels
}

func uniformWeights(c int) []float32 {
	w := make([]float32, c)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestFocalTverskyPerfectPredictionIsNearZero(t *testing.T) {
	// One-hot probabilities equal to the ground truth → TI=1 per class →
	// loss ≈ 0.
	n, c, h, w := 1, 3, 4, 4
	labels := make([]uint8, n*h*w)
	for i := range labels {
		labels[i] = uint8(i % c)
	}
	probs := tensor.New(n, c, h, w)
	hw := h * w
	for j, lab := range labels {
		probs.Data[int(lab)*hw+j] = 1
	}
	ft := NewFocalTversky(uniformWeights(c))
	loss := ft.Forward(probs, labels)
	if loss > 1e-3 {
		t.Fatalf("perfect prediction loss = %v, want ≈0", loss)
	}
}

func TestFocalTverskyWorstPredictionIsNearOne(t *testing.T) {
	// All mass on the wrong class → TI≈0 → loss ≈ 1.
	n, c, h, w := 1, 2, 4, 4
	labels := make([]uint8, n*h*w) // all class 0
	probs := tensor.New(n, c, h, w)
	hw := h * w
	for j := 0; j < hw; j++ {
		probs.Data[1*hw+j] = 1 // predict class 1 everywhere
	}
	ft := NewFocalTversky(uniformWeights(c))
	ft.Smooth = 1e-4
	loss := ft.Forward(probs, labels)
	if loss < 0.9 {
		t.Fatalf("worst prediction loss = %v, want ≈1", loss)
	}
}

func TestFocalTverskyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ft := NewFocalTversky(uniformWeights(4))
	for trial := 0; trial < 30; trial++ {
		probs, labels := randomProbs(rng, 2, 4, 6, 6)
		loss := ft.Forward(probs, labels)
		if loss < 0 || loss > 1 {
			t.Fatalf("loss %v out of [0,1]", loss)
		}
	}
}

func TestFocalTverskyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, c, h, w := 1, 3, 3, 3
	probs, labels := randomProbs(rng, n, c, h, w)
	weights := []float32{0.5, 1.5, 1.0}
	ft := NewFocalTversky(weights)

	ft.Forward(probs, labels)
	grad := ft.Backward()

	const eps = 1e-3
	for idx := 0; idx < probs.Len(); idx += 5 {
		orig := probs.Data[idx]
		probs.Data[idx] = orig + eps
		lp := ft.Forward(probs, labels)
		probs.Data[idx] = orig - eps
		lm := ft.Forward(probs, labels)
		probs.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		got := float64(grad.Data[idx])
		scale := math.Max(1e-3, math.Max(math.Abs(numeric), math.Abs(got)))
		if math.Abs(numeric-got)/scale > 3e-2 {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", idx, got, numeric)
		}
	}
	// Restore cache consistency after probing.
	ft.Forward(probs, labels)
}

func TestFocalTverskyWeightsSteerLoss(t *testing.T) {
	// Misclassifying only class 1 must hurt more when class 1's weight is
	// larger — the mechanism the paper uses against class imbalance.
	n, c, h, w := 1, 2, 4, 4
	labels := make([]uint8, n*h*w)
	for i := 8; i < 16; i++ {
		labels[i] = 1
	}
	hw := h * w
	probs := tensor.New(n, c, h, w)
	for j := 0; j < hw; j++ {
		probs.Data[j] = 1 // predict class 0 everywhere: class 1 fully missed
	}
	low := NewFocalTversky([]float32{1, 0.5})
	high := NewFocalTversky([]float32{1, 4})
	if l, h2 := low.Forward(probs, labels), high.Forward(probs, labels); h2 <= l {
		t.Fatalf("higher class weight should raise loss: low=%v high=%v", l, h2)
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	probs, labels := randomProbs(rng, 1, 3, 3, 3)
	ce := &CrossEntropy{}
	ce.Forward(probs, labels)
	grad := ce.Backward()
	const eps = 1e-4
	for idx := 0; idx < probs.Len(); idx += 4 {
		orig := probs.Data[idx]
		probs.Data[idx] = orig + eps
		lp := ce.Forward(probs, labels)
		probs.Data[idx] = orig - eps
		lm := ce.Forward(probs, labels)
		probs.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		got := float64(grad.Data[idx])
		scale := math.Max(1e-3, math.Max(math.Abs(numeric), math.Abs(got)))
		if math.Abs(numeric-got)/scale > 3e-2 {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", idx, got, numeric)
		}
	}
}

func TestDiceLossIsTverskyHalfHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	probs, labels := randomProbs(rng, 1, 4, 4, 4)
	d := NewDiceLoss(4)
	ft := &FocalTversky{Alpha: 0.5, Beta: 0.5, Gamma: 1, Weights: uniformWeights(4), Smooth: 1}
	if got, want := d.Forward(probs, labels), ft.Forward(probs, labels); math.Abs(got-want) > 1e-9 {
		t.Fatalf("dice %v != tversky(0.5,0.5) %v", got, want)
	}
}

func TestInverseFrequencyWeights(t *testing.T) {
	// Background 60%, liver 22%, bladder 2.5%: bladder weight must dominate.
	freq := []float64{0.60, 0.2218, 0.0251}
	w := InverseFrequencyWeights(freq, 0.1)
	if !(w[2] > w[1] && w[1] > w[0]) {
		t.Fatalf("weights not inversely ordered: %v", w)
	}
	// Mean-normalized.
	var sum float32
	for _, v := range w {
		sum += v
	}
	if math.Abs(float64(sum)/float64(len(w))-1) > 1e-5 {
		t.Fatalf("weights not mean-normalized: %v", w)
	}
}

func TestFocalTverskyGammaFocusesHardExamples(t *testing.T) {
	// For the same moderately-bad prediction, γ>1 shrinks the loss less for
	// hard cases relative to easy ones; concretely loss(γ=4/3) <
	// loss(γ=1) when 1−S < 1 (both in [0,1], power > 1 reduces value) —
	// verify the relationship that pushes training toward hard examples:
	// gradient magnitude near S→1 vanishes faster for γ>1.
	rng := rand.New(rand.NewSource(5))
	probs, labels := randomProbs(rng, 1, 3, 4, 4)
	g1 := &FocalTversky{Alpha: 0.7, Beta: 0.3, Gamma: 1, Weights: uniformWeights(3), Smooth: 1}
	g43 := NewFocalTversky(uniformWeights(3))
	l1 := g1.Forward(probs, labels)
	l43 := g43.Forward(probs, labels)
	if l1 <= 0 || l43 <= 0 {
		t.Skip("degenerate random prediction")
	}
	if !(l43 < l1) {
		t.Fatalf("γ=4/3 loss %v should be below γ=1 loss %v for 1−S<1", l43, l1)
	}
}

func TestFocalTverskyLossInUnitIntervalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		probs, labels := randomProbs(r, 1, 3, 4, 4)
		w := []float32{float32(rng.Float64()) + 0.1, float32(rng.Float64()) + 0.1, float32(rng.Float64()) + 0.1}
		ft := NewFocalTversky(w)
		loss := ft.Forward(probs, labels)
		return loss >= 0 && loss <= 1 && !math.IsNaN(loss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
