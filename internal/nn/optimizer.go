package nn

import (
	"math"

	"seneca/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and zeroes the gradients.
	Step(params []*Param)
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float32)
	// LR reports the current learning rate.
	LR() float32
}

// SGD is stochastic gradient descent with optional Nesterov-free momentum
// and L2 weight decay.
type SGD struct {
	Rate        float32
	Momentum    float32
	WeightDecay float32
	velocity    map[*Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{Rate: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: make(map[*Param]*tensor.Tensor)}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float32) { s.Rate = lr }

// LR implements Optimizer.
func (s *SGD) LR() float32 { return s.Rate }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay > 0 {
			g.AXPY(s.WeightDecay, p.Value)
		}
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum)
			v.AXPY(1, g)
			p.Value.AXPY(-s.Rate, v)
		} else {
			p.Value.AXPY(-s.Rate, g)
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba), the optimizer used to
// train the SENECA FP32 models.
type Adam struct {
	Rate    float32
	Beta1   float32
	Beta2   float32
	Eps     float32
	t       int
	moments map[*Param]*adamState
}

type adamState struct {
	m, v *tensor.Tensor
}

// NewAdam constructs an Adam optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-7, matching TensorFlow 2's defaults).
func NewAdam(lr float32) *Adam {
	return &Adam{Rate: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-7, moments: make(map[*Param]*adamState)}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float32) { a.Rate = lr }

// LR implements Optimizer.
func (a *Adam) LR() float32 { return a.Rate }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	b1c := 1 - tensor.Powf(a.Beta1, float32(a.t))
	b2c := 1 - tensor.Powf(a.Beta2, float32(a.t))
	for _, p := range params {
		st, ok := a.moments[p]
		if !ok {
			st = &adamState{m: tensor.New(p.Value.Shape...), v: tensor.New(p.Value.Shape...)}
			a.moments[p] = st
		}
		g := p.Grad.Data
		m := st.m.Data
		v := st.v.Data
		w := p.Value.Data
		lr := a.Rate
		for i := range g {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mhat := m[i] / b1c
			vhat := v[i] / b2c
			w[i] -= lr * mhat / (tensor.Sqrtf(vhat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm. Stabilizes early U-Net
// training with the focal Tversky loss.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		n := p.Grad.L2Norm()
		sq += n * n
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		s := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.Scale(s)
		}
	}
	return norm
}
