package nn

import (
	"fmt"
	"math/rand"

	"seneca/internal/par"
	"seneca/internal/tensor"
)

// ReLU is the rectified linear activation used after every batch-norm in the
// SENECA encoder/decoder stacks.
type ReLU struct {
	LayerName string
	lastMask  []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	var mask []bool
	if train {
		mask = make([]bool, len(x.Data))
	}
	par.ForChunked(len(x.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x.Data[i]
			if v > 0 {
				out.Data[i] = v
				if mask != nil {
					mask[i] = true
				}
			}
		}
	})
	if train {
		r.lastMask = mask
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.lastMask == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train=true)", r.LayerName))
	}
	out := tensor.New(grad.Shape...)
	par.ForChunked(len(grad.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if r.lastMask[i] {
				out.Data[i] = grad.Data[i]
			}
		}
	})
	// Release the cached mask: inference after training must not pin
	// training-batch-sized buffers.
	r.lastMask = nil
	return out
}

// MaxPool2D is 2×2/stride-2 max pooling (the only pooling geometry the
// SENECA encoder uses).
type MaxPool2D struct {
	LayerName string
	lastArg   []int32
	lastH     int
	lastW     int
}

// NewMaxPool2D constructs a 2×2 max-pooling layer.
func NewMaxPool2D(name string) *MaxPool2D { return &MaxPool2D{LayerName: name} }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.LayerName }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, arg := tensor.MaxPool2x2(x)
	if train {
		m.lastArg = arg
		m.lastH = x.Shape[2]
		m.lastW = x.Shape[3]
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.lastArg == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train=true)", m.LayerName))
	}
	out := tensor.MaxPool2x2Backward(grad, m.lastArg, m.lastH, m.lastW)
	m.lastArg = nil
	return out
}

// Dropout zeroes a random fraction Rate of activations during training and
// rescales survivors by 1/(1-Rate); it is the identity at inference and is
// removed entirely by the quantizer/compiler (paper Section III-D).
type Dropout struct {
	LayerName string
	Rate      float32
	rng       *rand.Rand
	lastMask  []float32
}

// NewDropout constructs a dropout layer with the given drop rate and a
// deterministic per-layer random stream.
func NewDropout(name string, rate float32, seed int64) *Dropout {
	return &Dropout{LayerName: name, Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate <= 0 {
		d.lastMask = nil
		return x
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	mask := make([]float32, len(x.Data))
	// Mask generation is intentionally serial: it consumes the layer's
	// deterministic random stream in index order so runs are reproducible
	// regardless of worker count.
	for i := range mask {
		if d.rng.Float32() < keep {
			mask[i] = scale
		}
	}
	out := tensor.New(x.Shape...)
	par.ForChunked(len(x.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = x.Data[i] * mask[i]
		}
	})
	d.lastMask = mask
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastMask == nil {
		return grad
	}
	out := tensor.New(grad.Shape...)
	par.ForChunked(len(grad.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = grad.Data[i] * d.lastMask[i]
		}
	})
	d.lastMask = nil
	return out
}

// Softmax applies a per-pixel softmax across channels, producing the six
// probability maps of the SENECA output head.
type Softmax struct {
	LayerName string
	lastOut   *tensor.Tensor
}

// NewSoftmax constructs a channel softmax layer.
func NewSoftmax(name string) *Softmax { return &Softmax{LayerName: name} }

// Name implements Layer.
func (s *Softmax) Name() string { return s.LayerName }

// Params implements Layer.
func (s *Softmax) Params() []*Param { return nil }

// Forward implements Layer.
func (s *Softmax) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.SoftmaxChannels(x)
	if train {
		s.lastOut = out
	}
	return out
}

// Backward implements Layer: dL/dz_i = p_i (dL/dp_i − Σ_j p_j dL/dp_j).
func (s *Softmax) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p := s.lastOut
	if p == nil {
		panic(fmt.Sprintf("nn: %s Backward before Forward(train=true)", s.LayerName))
	}
	n, c, h, w := p.Shape[0], p.Shape[1], p.Shape[2], p.Shape[3]
	hw := h * w
	out := tensor.New(n, c, h, w)
	par.For(n*hw, func(j int) {
		img := j / hw
		pix := j % hw
		base := img * c * hw
		var dot float32
		for ch := 0; ch < c; ch++ {
			idx := base + ch*hw + pix
			dot += p.Data[idx] * grad.Data[idx]
		}
		for ch := 0; ch < c; ch++ {
			idx := base + ch*hw + pix
			out.Data[idx] = p.Data[idx] * (grad.Data[idx] - dot)
		}
	})
	s.lastOut = nil
	return out
}
