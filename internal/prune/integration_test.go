package prune_test

import (
	"testing"

	"seneca/internal/core"
	"seneca/internal/ctorg"
	"seneca/internal/phantom"
	"seneca/internal/prune"
	"seneca/internal/quant"
	"seneca/internal/unet"
	"seneca/internal/xmodel"
)

// TestPruneQuantizeExecute runs the full composition the mixed-precision
// search builds on: train → prune → recalibrate → INT8 PTQ → compile →
// execute, and checks the pruned deployment stays within the documented
// accuracy tolerance of the unpruned INT8 one.
//
// Tolerance: at the default 25% filter-pruning fraction the pruned INT8
// global Dice may trail unpruned INT8 by at most 10 points on this tiny
// deterministic setup (observed ~5; the paper-scale ablation in
// EXPERIMENTS.md shows pruning costs real accuracy, which is exactly why
// mpq treats pruned variants as frontier candidates rather than drop-in
// replacements).
const prunedDiceTolerancePts = 10.0

func TestPruneQuantizeExecute(t *testing.T) {
	vols := phantom.GenerateDataset(6, phantom.Options{Size: 48, Slices: 10, Seed: 3, NoiseSigma: 10})
	ds := ctorg.Build(vols, 32)
	train, val, _ := ds.Split(0.7, 0.3, 9)
	tc := core.DefaultTrainConfig()
	tc.Epochs = 4
	tc.BatchSize = 6
	cfg := unet.Config{Name: "prune-int8", Depth: 2, BaseFilters: 8, InChannels: 1,
		NumClasses: ctorg.NumClasses, DropoutRate: 0.05, Seed: 4}
	m, _, err := core.Train(cfg, train, tc)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Export(32, 32)
	var calibIdx []int
	for i := 0; i < train.Len() && i < 16; i++ {
		calibIdx = append(calibIdx, i)
	}
	calib := train.Images(calibIdx)

	q8, err := quant.PTQ(g, calib, quant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := xmodel.Compile(q8, "int8-unpruned")
	if err != nil {
		t.Fatal(err)
	}
	baseConf, err := core.EvaluateINT8(base, val)
	if err != nil {
		t.Fatal(err)
	}

	pg, rep, err := prune.Prune(g, prune.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParamsAfter >= rep.ParamsBefore {
		t.Fatalf("pruning did not shrink the model: %d → %d", rep.ParamsBefore, rep.ParamsAfter)
	}
	// The pruned topology has different activation ranges — recalibrate
	// before quantizing, exactly as mpq.Search does.
	qp, err := quant.PTQ(pg, calib, quant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := xmodel.Compile(qp, "int8-pruned")
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats().WeightBytes >= base.Stats().WeightBytes {
		t.Fatalf("pruned program is not smaller: %d vs %d weight bytes",
			pruned.Stats().WeightBytes, base.Stats().WeightBytes)
	}
	prunedConf, err := core.EvaluateINT8(pruned, val)
	if err != nil {
		t.Fatal(err)
	}

	baseDice := 100 * baseConf.GlobalDice()
	prunedDice := 100 * prunedConf.GlobalDice()
	t.Logf("global Dice: unpruned INT8 %.2f%%, pruned INT8 %.2f%%", baseDice, prunedDice)
	if drop := baseDice - prunedDice; drop > prunedDiceTolerancePts {
		t.Fatalf("pruned INT8 Dice dropped %.2f points, tolerance %.1f", drop, prunedDiceTolerancePts)
	}

	// The pruned program must still emit well-formed masks.
	img := val.Images([]int{0})[0]
	mask, err := pruned.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(mask) != val.Size*val.Size {
		t.Fatalf("mask has %d pixels, want %d", len(mask), val.Size*val.Size)
	}
	for _, c := range mask {
		if c >= ctorg.NumClasses {
			t.Fatalf("mask emits class %d", c)
		}
	}
}
