package prune

import (
	"seneca/internal/graph"
	"seneca/internal/tensor"
)

// sliceConvWeight gathers the surviving input and output channels of a
// convolution weight tensor, preserving the node kind's layout.
func sliceConvWeight(n *graph.Node, inKeep, outKeep []int) *tensor.Tensor {
	k := n.Kernel
	kk := k * k
	switch n.Kind {
	case graph.KindConv: // [OutC, InC, K, K]
		out := tensor.New(len(outKeep), len(inKeep), k, k)
		for oi, oc := range outKeep {
			for ii, ic := range inKeep {
				src := n.Weight.Data[(oc*n.InC+ic)*kk : (oc*n.InC+ic+1)*kk]
				dst := out.Data[(oi*len(inKeep)+ii)*kk : (oi*len(inKeep)+ii+1)*kk]
				copy(dst, src)
			}
		}
		return out
	case graph.KindConvTranspose: // [InC, OutC, K, K]
		out := tensor.New(len(inKeep), len(outKeep), k, k)
		for ii, ic := range inKeep {
			for oi, oc := range outKeep {
				src := n.Weight.Data[(ic*n.OutC+oc)*kk : (ic*n.OutC+oc+1)*kk]
				dst := out.Data[(ii*len(outKeep)+oi)*kk : (ii*len(outKeep)+oi+1)*kk]
				copy(dst, src)
			}
		}
		return out
	}
	return n.Weight.Clone()
}
