package prune

import (
	"math/rand"
	"testing"

	"seneca/internal/dpu"
	"seneca/internal/graph"
	"seneca/internal/quant"
	"seneca/internal/tensor"
	"seneca/internal/unet"
	"seneca/internal/xmodel"
)

func exportedTestGraph(t *testing.T, baseFilters int) *graph.Graph {
	t.Helper()
	cfg := unet.Config{Name: "p", Depth: 2, BaseFilters: baseFilters, InChannels: 1, NumClasses: 6, DropoutRate: 0, Seed: 3}
	m := unet.New(cfg)
	// Warm batch-norm statistics.
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 1, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	m.Forward(x, true)
	return m.Export(16, 16)
}

func TestPruneReducesParameters(t *testing.T) {
	g := exportedTestGraph(t, 16)
	pruned, rep, err := Prune(g, Options{Fraction: 0.5, Align: 8, MinChannels: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParamsAfter >= rep.ParamsBefore {
		t.Fatalf("params did not shrink: %d → %d", rep.ParamsBefore, rep.ParamsAfter)
	}
	if len(rep.PrunedChannels) == 0 {
		t.Fatal("no layers pruned")
	}
	// Alignment: every conv keeps a multiple of 8 channels (except the
	// classifier head, which is untouched).
	for _, n := range pruned.Nodes {
		if n.Kind != graph.KindConv && n.Kind != graph.KindConvTranspose {
			continue
		}
		if n.Name == "head.conv" {
			if n.OutC != 6 {
				t.Fatalf("classifier head pruned to %d channels", n.OutC)
			}
			continue
		}
		if n.OutC%8 != 0 {
			t.Errorf("%s: %d surviving channels not 8-aligned", n.Name, n.OutC)
		}
	}
}

func TestPrunedGraphExecutes(t *testing.T) {
	g := exportedTestGraph(t, 16)
	pruned, _, err := Prune(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	img := tensor.New(1, 16, 16)
	for i := range img.Data {
		img.Data[i] = float32(rng.NormFloat64())
	}
	out, err := pruned.Forward(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[0] != 6 || out.Shape[1] != 16 || out.Shape[2] != 16 {
		t.Fatalf("pruned output shape %v", out.Shape)
	}
}

func TestPruneKeepsStrongestChannels(t *testing.T) {
	// Hand-built: conv with 4 output channels of clearly distinct norms.
	g := graph.New(1, 4, 4)
	w := tensor.New(4, 1, 1, 1)
	w.Data = []float32{0.01, 5, 0.02, 7} // channels 1 and 3 dominate
	g.Add(&graph.Node{
		Name: "c", Kind: graph.KindConv, Inputs: []string{"input"},
		Kernel: 1, Stride: 1, Pad: 0, InC: 1, OutC: 4,
		Weight: w, Bias: []float32{1, 2, 3, 4},
	})
	g.Add(&graph.Node{Name: "r", Kind: graph.KindReLU, Inputs: []string{"c"}})
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	pruned, _, err := Prune(g, Options{Fraction: 0.5, Align: 1, MinChannels: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := pruned.Node("c")
	if c.OutC != 2 {
		t.Fatalf("kept %d channels, want 2", c.OutC)
	}
	if c.Weight.Data[0] != 5 || c.Weight.Data[1] != 7 {
		t.Fatalf("kept wrong channels: weights %v", c.Weight.Data)
	}
	if c.Bias[0] != 2 || c.Bias[1] != 4 {
		t.Fatalf("bias not gathered: %v", c.Bias)
	}
}

func TestPruneInvalidFraction(t *testing.T) {
	g := exportedTestGraph(t, 8)
	if _, _, err := Prune(g, Options{Fraction: 0}); err == nil {
		t.Fatal("fraction 0 accepted")
	}
	if _, _, err := Prune(g, Options{Fraction: 1}); err == nil {
		t.Fatal("fraction 1 accepted")
	}
}

// TestPruningImprovesThroughput is the paper's future-work claim: pruning
// raises FPS and energy efficiency on the DPU.
func TestPruningImprovesThroughput(t *testing.T) {
	cfg, _ := unet.ConfigByName("4M")
	m := unet.New(cfg)
	g := m.Export(256, 256)

	compile := func(gr *graph.Graph) *xmodel.Program {
		q, err := quant.QuantizeShapeOnly(gr)
		if err != nil {
			t.Fatal(err)
		}
		p, err := xmodel.Compile(q, "p")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	dev := dpu.New(dpu.ZCU104B4096())
	base := dev.TimeFrame(compile(g))

	pruned, rep, err := Prune(g, Options{Fraction: 0.4, Align: 8, MinChannels: 8})
	if err != nil {
		t.Fatal(err)
	}
	fast := dev.TimeFrame(compile(pruned))
	if fast.Latency >= base.Latency {
		t.Fatalf("pruning did not speed up the DPU: %v → %v", base.Latency, fast.Latency)
	}
	t.Logf("pruned %d→%d conv params; latency %v → %v (%.2f×)",
		rep.ParamsBefore, rep.ParamsAfter, base.Latency, fast.Latency,
		float64(base.Latency)/float64(fast.Latency))
}

// TestPruneZeroFractionEquivalence: pruning that removes nothing must keep
// the function bit-identical.
func TestPruneMinChannelsFloor(t *testing.T) {
	g := exportedTestGraph(t, 8)
	pruned, _, err := Prune(g, Options{Fraction: 0.9, Align: 8, MinChannels: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range pruned.Nodes {
		if (n.Kind == graph.KindConv || n.Kind == graph.KindConvTranspose) && n.Name != "head.conv" {
			if n.OutC < 8 {
				t.Fatalf("%s pruned below floor: %d", n.Name, n.OutC)
			}
		}
	}
}
