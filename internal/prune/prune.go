// Package prune implements structured (filter-level) magnitude pruning for
// the SENECA U-Nets — the paper's stated future work ("we will evaluate
// some pruning techniques to additionally improve throughput and energy
// efficiency", Section V).
//
// Pruning operates on the exported inference graph: for every encoder/
// decoder convolution, the output channels with the lowest L1 weight norm
// are removed, and every consumer (the next convolution, the batch-norm
// affine, the skip-connection concat) is rewired to the surviving channels.
// The result is a genuinely smaller graph — fewer MACs, fewer weights,
// smaller feature maps — which the existing quantizer, compiler and DPU
// model consume unchanged, so the throughput/energy gains are measured by
// the same machinery as everything else.
//
// Filter counts are kept multiples of the DPU's 8-channel vector
// granularity by default, because the device model (and the real DPU)
// punishes misaligned channel counts (see internal/dpu).
package prune

import (
	"fmt"
	"sort"

	"seneca/internal/graph"
)

// Options controls pruning.
type Options struct {
	// Fraction is the target fraction of output channels to remove from
	// each prunable convolution (0 < Fraction < 1).
	Fraction float64
	// Align keeps surviving channel counts multiples of this granularity
	// (default 8, the DPU vector width). 1 disables alignment.
	Align int
	// MinChannels is the floor below which a layer is never pruned.
	MinChannels int
}

// DefaultOptions returns a conservative 25% filter pruning aligned to the
// DPU granularity.
func DefaultOptions() Options {
	return Options{Fraction: 0.25, Align: 8, MinChannels: 8}
}

// Report summarizes what pruning removed.
type Report struct {
	// PrunedChannels maps conv node name → channels removed.
	PrunedChannels map[string]int
	// ParamsBefore/After count convolution weights.
	ParamsBefore, ParamsAfter int64
}

// Prune returns a pruned deep copy of the graph. The graph must be in
// exported (unfolded) form: conv → batchnorm → relu chains with concat skip
// connections, as produced by unet.Model.Export. The final classifier
// convolution is never pruned (its output channels are the classes).
func Prune(g *graph.Graph, opt Options) (*graph.Graph, *Report, error) {
	if opt.Fraction <= 0 || opt.Fraction >= 1 {
		return nil, nil, fmt.Errorf("prune: fraction %v out of (0,1)", opt.Fraction)
	}
	if opt.Align < 1 {
		opt.Align = 1
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("prune: invalid graph: %w", err)
	}

	// consumers[name] lists nodes reading each node's output.
	consumers := make(map[string][]*graph.Node)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			consumers[in] = append(consumers[in], n)
		}
	}

	report := &Report{PrunedChannels: make(map[string]int)}
	for _, n := range g.Nodes {
		if n.Kind == graph.KindConv || n.Kind == graph.KindConvTranspose {
			report.ParamsBefore += int64(n.Weight.Len())
		}
	}

	// keep[name] lists each node's surviving output channels as indices
	// into that node's ORIGINAL output-channel space, in increasing order.
	// Consumers use it to slice their weights: a consumer's original input
	// space is its producer's original output space.
	keep := make(map[string][]int)

	if err := g.InferShapes(); err != nil {
		return nil, nil, fmt.Errorf("prune: shapes: %w", err)
	}
	out := graph.New(g.InC, g.InH, g.InW)
	keep[g.InputName] = identity(g.InC)

	for _, n := range g.Nodes {
		switch n.Kind {
		case graph.KindInput:
			// Already present.
		case graph.KindConv:
			inKeep := keep[n.Inputs[0]]
			survivors := identity(n.OutC)
			if prunable(n, consumers, g) {
				survivors = selectChannels(n, opt)
				report.PrunedChannels[n.Name] = n.OutC - len(survivors)
			}
			nn := copyNode(n)
			nn.Weight = sliceConvWeight(n, inKeep, survivors)
			nn.Bias = gatherF32(n.Bias, survivors)
			nn.InC = len(inKeep)
			nn.OutC = len(survivors)
			out.Add(nn)
			keep[n.Name] = survivors
		case graph.KindConvTranspose:
			inKeep := keep[n.Inputs[0]]
			survivors := identity(n.OutC)
			if prunable(n, consumers, g) {
				survivors = selectChannels(n, opt)
				report.PrunedChannels[n.Name] = n.OutC - len(survivors)
			}
			nn := copyNode(n)
			nn.Weight = sliceConvWeight(n, inKeep, survivors)
			nn.Bias = gatherF32(n.Bias, survivors)
			nn.InC = len(inKeep)
			nn.OutC = len(survivors)
			out.Add(nn)
			keep[n.Name] = survivors
		case graph.KindBatchNorm:
			inKeep := keep[n.Inputs[0]]
			nn := copyNode(n)
			nn.Scale = gatherF32(n.Scale, inKeep)
			nn.Shift = gatherF32(n.Shift, inKeep)
			out.Add(nn)
			keep[n.Name] = inKeep
		case graph.KindConcat:
			a := keep[n.Inputs[0]]
			b := keep[n.Inputs[1]]
			// Map the second input's survivors into the concatenated
			// original channel space.
			firstOrig := g.Node(n.Inputs[0]).OutShape[0]
			merged := append([]int(nil), a...)
			for _, j := range b {
				merged = append(merged, firstOrig+j)
			}
			nn := copyNode(n)
			out.Add(nn)
			keep[n.Name] = merged
		default: // ReLU, MaxPool, Dropout, Softmax preserve channel identity.
			inKeep := keep[n.Inputs[0]]
			nn := copyNode(n)
			out.Add(nn)
			keep[n.Name] = inKeep
		}
	}
	out.OutputName = g.OutputName
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("prune: pruned graph invalid: %w", err)
	}
	if err := out.InferShapes(); err != nil {
		return nil, nil, fmt.Errorf("prune: pruned graph shapes: %w", err)
	}
	for _, n := range out.Nodes {
		if n.Kind == graph.KindConv || n.Kind == graph.KindConvTranspose {
			report.ParamsAfter += int64(n.Weight.Len())
		}
	}
	return out, report, nil
}

// prunable reports whether a convolution's output channels may be removed:
// the final classifier (feeding softmax directly or via nothing else) keeps
// all channels.
func prunable(n *graph.Node, consumers map[string][]*graph.Node, g *graph.Graph) bool {
	for _, c := range consumers[n.Name] {
		if c.Kind == graph.KindSoftmax {
			return false
		}
	}
	return n.Name != g.OutputName
}

// selectChannels ranks output channels by L1 norm and keeps the strongest,
// respecting alignment and the channel floor.
func selectChannels(n *graph.Node, opt Options) []int {
	targetKeep := int(float64(n.OutC) * (1 - opt.Fraction))
	if opt.Align > 1 {
		targetKeep = (targetKeep / opt.Align) * opt.Align
	}
	if targetKeep < opt.MinChannels {
		targetKeep = opt.MinChannels
	}
	if targetKeep >= n.OutC {
		return identity(n.OutC)
	}
	norms := channelL1(n)
	idx := identity(n.OutC)
	sort.Slice(idx, func(i, j int) bool { return norms[idx[i]] > norms[idx[j]] })
	kept := append([]int(nil), idx[:targetKeep]...)
	sort.Ints(kept)
	return kept
}

// channelL1 computes the per-output-channel L1 weight norm.
func channelL1(n *graph.Node) []float64 {
	norms := make([]float64, n.OutC)
	kk := n.Kernel * n.Kernel
	switch n.Kind {
	case graph.KindConv: // [OutC, InC, K, K]
		per := n.InC * kk
		for oc := 0; oc < n.OutC; oc++ {
			var s float64
			for _, v := range n.Weight.Data[oc*per : (oc+1)*per] {
				if v < 0 {
					v = -v
				}
				s += float64(v)
			}
			norms[oc] = s
		}
	case graph.KindConvTranspose: // [InC, OutC, K, K]
		for ic := 0; ic < n.InC; ic++ {
			for oc := 0; oc < n.OutC; oc++ {
				base := (ic*n.OutC + oc) * kk
				var s float64
				for _, v := range n.Weight.Data[base : base+kk] {
					if v < 0 {
						v = -v
					}
					s += float64(v)
				}
				norms[oc] += s
			}
		}
	}
	return norms
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func gatherF32(src []float32, idx []int) []float32 {
	if src == nil {
		return nil
	}
	out := make([]float32, len(idx))
	for i, j := range idx {
		out[i] = src[j]
	}
	return out
}

func copyNode(n *graph.Node) *graph.Node {
	c := *n
	c.Inputs = append([]string(nil), n.Inputs...)
	if n.Bias != nil {
		c.Bias = append([]float32(nil), n.Bias...)
	}
	if n.Scale != nil {
		c.Scale = append([]float32(nil), n.Scale...)
		c.Shift = append([]float32(nil), n.Shift...)
	}
	if n.Weight != nil {
		c.Weight = n.Weight.Clone()
	}
	return &c
}
