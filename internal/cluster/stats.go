package cluster

import (
	"sync/atomic"
)

// clusterStats is the cluster's internal counter block; all fields are
// atomics so the dispatch hot path never takes the topology lock.
type clusterStats struct {
	submitted    [2]atomic.Uint64 // by Tier
	goodput      [2]atomic.Uint64 // completed, by Tier
	shed         [2]atomic.Uint64 // load-shed (429), by Tier
	redispatched atomic.Uint64    // dispatches retried on another node
	ejections    atomic.Uint64    // nodes removed from routing by health
	scaleUps     atomic.Uint64
	scaleDowns   atomic.Uint64
	restarts     atomic.Uint64 // nodes replaced by rolling restarts

	hedges      atomic.Uint64 // hedge legs launched
	hedgeWins   atomic.Uint64 // requests whose hedge leg answered first
	retryDenied atomic.Uint64 // retries/hedges refused by the retry budget
}

// TierStats is one admission tier's request accounting.
type TierStats struct {
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	// Latency quantiles of completed requests, extracted from the tier's
	// histogram bucket counts.
	P50LatencyMS  float64 `json:"p50_latency_ms"`
	P99LatencyMS  float64 `json:"p99_latency_ms"`
	P999LatencyMS float64 `json:"p999_latency_ms"`
}

// NodeStats is one replica's row in the fleet snapshot.
type NodeStats struct {
	Slot           int    `json:"slot"`
	Gen            int    `json:"gen"`
	State          string `json:"state"`
	Depth          int    `json:"queue_depth"`
	InFlight       int    `json:"in_flight_batches"`
	Completed      uint64 `json:"completed"`
	Rejected       uint64 `json:"rejected"`
	Runners        int    `json:"runners"`
	HealthyRunners int    `json:"healthy_runners"`
}

// Stats is a point-in-time snapshot of the fleet, as exported by
// GET /statz on the front door.
type Stats struct {
	Model      string `json:"model"`
	InputShape [3]int `json:"input_shape"`
	Placement  string `json:"placement"`

	MinNodes    int `json:"min_nodes"`
	MaxNodes    int `json:"max_nodes"`
	ActiveNodes int `json:"active_nodes"`

	Nodes []NodeStats `json:"nodes"`

	Interactive TierStats `json:"interactive"`
	Batch       TierStats `json:"batch"`

	Redispatches uint64 `json:"redispatches"`
	Ejections    uint64 `json:"node_ejections"`
	ScaleUps     uint64 `json:"scale_ups"`
	ScaleDowns   uint64 `json:"scale_downs"`
	Restarts     uint64 `json:"rolling_restarts"`

	Hedges      uint64 `json:"hedges"`
	HedgeWins   uint64 `json:"hedge_wins"`
	RetryDenied uint64 `json:"retry_budget_denied"`
}

// Stats snapshots the fleet. Concurrent mutation means the snapshot is
// consistent per field, not across fields.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Model:        c.model,
		InputShape:   [3]int{c.inC, c.inH, c.inW},
		Placement:    string(c.cfg.Placement),
		MinNodes:     c.cfg.MinNodes,
		MaxNodes:     c.cfg.MaxNodes,
		Redispatches: c.stats.redispatched.Load(),
		Ejections:    c.stats.ejections.Load(),
		ScaleUps:     c.stats.scaleUps.Load(),
		ScaleDowns:   c.stats.scaleDowns.Load(),
		Restarts:     c.stats.restarts.Load(),
		Hedges:       c.stats.hedges.Load(),
		HedgeWins:    c.stats.hedgeWins.Load(),
		RetryDenied:  c.stats.retryDenied.Load(),
	}
	for tier, dst := range []*TierStats{&st.Interactive, &st.Batch} {
		dst.Submitted = c.stats.submitted[tier].Load()
		dst.Completed = c.stats.goodput[tier].Load()
		dst.Shed = c.stats.shed[tier].Load()
		qs := c.mLatency[tier].Quantiles(0.50, 0.99, 0.999)
		dst.P50LatencyMS = qs[0] * 1e3
		dst.P99LatencyMS = qs[1] * 1e3
		dst.P999LatencyMS = qs[2] * 1e3
	}

	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range c.slots {
		if n == nil {
			continue
		}
		s := n.srv.Stats()
		state := n.stateNow()
		if state == NodeActive {
			st.ActiveNodes++
		}
		st.Nodes = append(st.Nodes, NodeStats{
			Slot:           n.slot,
			Gen:            n.gen,
			State:          state.String(),
			Depth:          n.srv.QueueDepth(),
			InFlight:       n.srv.InFlightBatches(),
			Completed:      s.Completed,
			Rejected:       s.Rejected,
			Runners:        s.Runners,
			HealthyRunners: s.HealthyRunners,
		})
	}
	return st
}

// Health is the fleet-level health summary behind GET /healthz.
type Health struct {
	// Status is "ok", "degraded" (some node not active, or a node's own
	// runner pool degraded), "draining" or "unavailable" (no routable
	// node — the 503 case).
	Status   string   `json:"status"`
	Draining bool     `json:"draining"`
	Model    string   `json:"model"`
	Nodes    int      `json:"nodes"`
	Active   int      `json:"active_nodes"`
	States   []string `json:"node_states"`
}

// Health snapshots fleet health. Ejected nodes past their cooldown still
// count as non-active (they admit only probes).
func (c *Cluster) Health() Health {
	h := Health{Model: c.model}
	c.mu.RLock()
	closing := c.closing
	degradedPool := false
	for _, n := range c.slots {
		if n == nil {
			continue
		}
		h.Nodes++
		state := n.stateNow()
		h.States = append(h.States, state.String())
		if state == NodeActive {
			h.Active++
		}
		if sh := n.srv.Health(); sh.Degraded {
			degradedPool = true
		}
	}
	c.mu.RUnlock()
	h.Draining = closing
	switch {
	case closing:
		h.Status = "draining"
	case h.Active == 0:
		h.Status = "unavailable"
	case h.Active < h.Nodes || degradedPool:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}
