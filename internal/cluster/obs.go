package cluster

import (
	"strconv"

	"seneca/internal/obs"
)

// routeDepthBuckets bound the routing-decision histogram: the load of the
// chosen node at dispatch time, from idle to a few hundred queued.
var routeDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// initMetrics wires the cluster's counters and gauges into an
// obs.Registry. Callback-backed series keep the internal atomics as the
// single source of truth (the serve-tier idiom); the latency and
// routing-depth histograms are real obs histograms fed on the dispatch
// path. Per-slot depth gauges are registered for every fleet slot up
// front — an empty slot reads 0 — so autoscaling churn never grows the
// label space.
func (c *Cluster) initMetrics(reg *obs.Registry) {
	c.reg = reg

	for _, state := range []NodeState{NodeActive, NodeDraining, NodeEjected} {
		state := state
		reg.GaugeFunc("seneca_cluster_nodes",
			"Fleet nodes by routing state.",
			func() float64 {
				c.mu.RLock()
				defer c.mu.RUnlock()
				n := 0
				for _, nd := range c.slots {
					if nd != nil && nd.stateNow() == state {
						n++
					}
				}
				return float64(n)
			},
			obs.L("state", state.String()))
	}
	reg.GaugeFunc("seneca_cluster_node_capacity",
		"Configured fleet ceiling (MaxNodes).",
		func() float64 { return float64(c.cfg.MaxNodes) })

	for slot := 0; slot < c.cfg.MaxNodes; slot++ {
		slot := slot
		reg.GaugeFunc("seneca_cluster_node_depth",
			"Per-node admission queue depth plus in-flight batches (0 for an empty slot).",
			func() float64 {
				c.mu.RLock()
				n := c.slots[slot]
				c.mu.RUnlock()
				if n == nil {
					return 0
				}
				return float64(n.load())
			},
			obs.L("node", strconv.Itoa(slot)))
	}

	for _, tier := range []Tier{TierInteractive, TierBatch} {
		tier := tier
		reg.CounterFunc("seneca_cluster_requests_total",
			"Requests admitted at the front door, by tier.",
			c.stats.submitted[tier].Load, obs.L("tier", tier.String()))
		reg.CounterFunc("seneca_cluster_goodput_total",
			"Requests completed with a mask, by tier.",
			c.stats.goodput[tier].Load, obs.L("tier", tier.String()))
		reg.CounterFunc("seneca_cluster_shed_total",
			"Requests load-shed (429) because no node admitted their tier.",
			c.stats.shed[tier].Load, obs.L("tier", tier.String()))
	}
	reg.CounterFunc("seneca_cluster_redispatches_total",
		"Dispatches retried on another node after a node-level failure.",
		c.stats.redispatched.Load)
	reg.CounterFunc("seneca_cluster_node_ejections_total",
		"Nodes ejected from routing by the per-node health view.",
		c.stats.ejections.Load)
	reg.CounterFunc("seneca_cluster_scale_events_total",
		"Autoscaler actions.", c.stats.scaleUps.Load, obs.L("direction", "up"))
	reg.CounterFunc("seneca_cluster_scale_events_total",
		"Autoscaler actions.", c.stats.scaleDowns.Load, obs.L("direction", "down"))
	reg.CounterFunc("seneca_cluster_rolling_restarts_total",
		"Nodes replaced by rolling restarts.",
		c.stats.restarts.Load)
	reg.CounterFunc("seneca_cluster_hedges_total",
		"Hedge legs launched for interactive requests past their hedge threshold.",
		c.stats.hedges.Load)
	reg.CounterFunc("seneca_cluster_hedge_wins_total",
		"Requests whose hedge leg answered before the primary.",
		c.stats.hedgeWins.Load)
	reg.CounterFunc("seneca_cluster_retry_budget_denied_total",
		"Retries and hedges refused because the per-window retry budget was spent.",
		c.stats.retryDenied.Load)

	for _, tier := range []Tier{TierInteractive, TierBatch} {
		c.mLatency[tier] = reg.Histogram("seneca_cluster_request_latency_seconds",
			"Front-door request latency from dispatch to completion, by tier.",
			obs.DefBuckets, obs.L("tier", tier.String()))
	}
	c.mRouteDepth = reg.Histogram("seneca_cluster_route_depth",
		"Load (queue depth + in-flight batches) of the chosen node at each routing decision.",
		routeDepthBuckets)

	reg.Gauge("seneca_cluster_info",
		"Cluster configuration (constant 1; dimensions carry the config).",
		obs.L("model", c.model), obs.L("placement", string(c.cfg.Placement))).Set(1)
}

// Metrics returns the registry this cluster reports into.
func (c *Cluster) Metrics() *obs.Registry { return c.reg }
