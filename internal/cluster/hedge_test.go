package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seneca/internal/dpu"
	"seneca/internal/fault"
	"seneca/internal/serve"
)

func TestRetryBudgetFloorAndFraction(t *testing.T) {
	b := newRetryBudget(0.5, 2, time.Hour)
	// An empty window still admits the Min floor, and not one more.
	if !b.allow() || !b.allow() {
		t.Fatal("budget floor must admit Min retries with zero requests")
	}
	if b.allow() {
		t.Fatal("budget admitted past its floor with zero requests")
	}
	// 10 admitted requests raise the limit to frac×10 = 5; 2 are spent.
	for i := 0; i < 10; i++ {
		b.noteRequest()
	}
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("retry %d of 3 denied with limit 5 and 2 spent", i)
		}
	}
	if b.allow() {
		t.Fatal("budget admitted a 6th retry with limit 5")
	}
}

func TestRetryBudgetWindowRolls(t *testing.T) {
	b := newRetryBudget(0.5, 1, 10*time.Millisecond)
	if !b.allow() {
		t.Fatal("fresh budget denied its floor")
	}
	if b.allow() {
		t.Fatal("spent budget admitted another retry inside the window")
	}
	time.Sleep(20 * time.Millisecond)
	if !b.allow() {
		t.Fatal("a new window did not restore the budget")
	}
}

func TestHedgeDelayEligibility(t *testing.T) {
	c := &Cluster{cfg: Config{HedgeFraction: 0.25, HedgeAfter: 50 * time.Millisecond}.withDefaults()}
	bg := context.Background()
	if _, ok := c.hedgeDelay(bg, TierBatch); ok {
		t.Fatal("batch tier must never hedge")
	}
	ctx, cancel := context.WithTimeout(bg, time.Second)
	defer cancel()
	d, ok := c.hedgeDelay(ctx, TierInteractive)
	if !ok || d <= 0 || d > 250*time.Millisecond {
		t.Fatalf("deadline hedge delay = %v, %v; want ~0.25 of the remaining second", d, ok)
	}
	if d, ok = c.hedgeDelay(bg, TierInteractive); !ok || d != 50*time.Millisecond {
		t.Fatalf("deadline-less hedge = %v, %v; want HedgeAfter", d, ok)
	}
	expired, cancel2 := context.WithDeadline(bg, time.Now().Add(-time.Second))
	defer cancel2()
	if _, ok := c.hedgeDelay(expired, TierInteractive); ok {
		t.Fatal("an already-expired deadline must not hedge")
	}
	off := &Cluster{cfg: Config{}.withDefaults()}
	if _, ok := off.hedgeDelay(ctx, TierInteractive); ok {
		t.Fatal("HedgeFraction 0 must disable hedging")
	}
}

// TestHedgeRescuesSlowNodeAndAvoidsPrimary programs every dispatch to slot
// 0 — the idle fleet's deterministic first pick — to stall far past the
// hedge threshold. The hedge leg must launch, land on the other node,
// answer first (bit-exact), and cancel the stalled primary.
func TestHedgeRescuesSlowNodeAndAvoidsPrimary(t *testing.T) {
	c, prog, imgs := newTestCluster(t,
		Config{MinNodes: 2, MaxNodes: 2, HedgeFraction: 0.15, RetryBudgetFrac: 1, RetryBudgetMin: 100},
		serve.Config{QueueDepth: 64})
	ref := dpu.New(dpu.ZCU104B4096())
	fault.Seed(3)
	fault.Enable("cluster.node.serve.0", fault.SlowTail(0, 1200*time.Millisecond))
	t.Cleanup(fault.Reset)

	const n = 5
	for i := 0; i < n; i++ {
		img := imgs[i%len(imgs)]
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res, err := c.Do(ctx, img, "", TierInteractive)
		cancel()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !res.Hedged {
			t.Fatalf("request %d not hedged despite a 1.2s primary stall and a ~300ms hedge threshold", i)
		}
		if res.Node != 1 {
			t.Fatalf("request %d served by node %d — the hedge must avoid its primary's node", i, res.Node)
		}
		want, err := ref.Execute(prog, img)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Mask, want) {
			t.Fatalf("request %d: hedged mask diverges from direct execution", i)
		}
	}
	st := c.Stats()
	if st.Hedges != n || st.HedgeWins != n {
		t.Fatalf("hedges = %d, wins = %d, want %d/%d", st.Hedges, st.HedgeWins, n, n)
	}
	if st.Interactive.Completed != n {
		t.Fatalf("completed = %d, want %d — a hedge must complete its request exactly once", st.Interactive.Completed, n)
	}

	// The front door advertises the hedge and propagates the deadline that
	// arms it.
	web := httptest.NewServer(c.Handler())
	defer web.Close()
	req, err := http.NewRequest(http.MethodPost, web.URL+"/v1/segment", bytes.NewReader(serve.EncodeInput(imgs[0].Data)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(serve.DeadlineHeader, "2000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(serve.HedgedHeader) != "1" {
		t.Fatalf("%s header = %q, want 1", serve.HedgedHeader, resp.Header.Get(serve.HedgedHeader))
	}
	want, err := ref.Execute(prog, imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("hedged HTTP response diverges from direct execution")
	}

	// The obs mirror of the hedge counters.
	text := c.reg.Expose()
	for _, name := range []string{
		"seneca_cluster_hedges_total",
		"seneca_cluster_hedge_wins_total",
		"seneca_cluster_retry_budget_denied_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// TestHedgeDeniedByRetryBudget pins the budget to a single token: the
// first stalled request hedges, the second is denied and must ride out
// its primary's stall — still answering correctly, just slower.
func TestHedgeDeniedByRetryBudget(t *testing.T) {
	c, _, imgs := newTestCluster(t,
		Config{MinNodes: 2, MaxNodes: 2, HedgeFraction: 0.15, RetryBudgetFrac: 0.01, RetryBudgetMin: 1},
		serve.Config{QueueDepth: 64})
	fault.Seed(4)
	fault.Enable("cluster.node.serve.0", fault.SlowTail(0, 700*time.Millisecond))
	t.Cleanup(fault.Reset)

	do := func() Result {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		res, err := c.Do(ctx, imgs[0], "", TierInteractive)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := do(); !res.Hedged {
		t.Fatal("first stalled request did not spend the budget's single hedge token")
	}
	if res := do(); res.Hedged {
		t.Fatal("second request hedged past an exhausted retry budget")
	}
	st := c.Stats()
	if st.Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", st.Hedges)
	}
	if st.RetryDenied != 1 {
		t.Fatalf("retry budget denials = %d, want 1", st.RetryDenied)
	}
	if st.Interactive.Completed != 2 {
		t.Fatalf("completed = %d, want 2 — a denied hedge must not lose the request", st.Interactive.Completed)
	}
}
