package cluster

import (
	"context"
	"time"
)

// controlLoop is the queue-depth-driven autoscaler: every EvalInterval it
// compares the fleet's aggregate load to its aggregate queue capacity.
// Above HighWaterFrac for SustainWindow it spawns a replica (to MaxNodes);
// below LowWaterFrac for SustainWindow it drains and retires one (to
// MinNodes). ScaleCooldown separates actions so a spawn's effect is
// observed before the next decision.
func (c *Cluster) controlLoop() {
	defer c.ctlDone.Done()
	ticker := time.NewTicker(c.cfg.EvalInterval)
	defer ticker.Stop()
	var highSince, lowSince, lastScale time.Time
	for {
		var now time.Time
		select {
		case <-c.ctlStop:
			return
		case now = <-ticker.C:
		}

		active, load := c.fleetLoad()
		if active == 0 {
			continue
		}
		capacity := active * c.nodeQueueCap
		frac := float64(load) / float64(capacity)
		switch {
		case frac >= c.cfg.HighWaterFrac:
			if highSince.IsZero() {
				highSince = now
			}
			lowSince = time.Time{}
		case frac <= c.cfg.LowWaterFrac:
			if lowSince.IsZero() {
				lowSince = now
			}
			highSince = time.Time{}
		default:
			highSince, lowSince = time.Time{}, time.Time{}
		}
		cooled := lastScale.IsZero() || now.Sub(lastScale) >= c.cfg.ScaleCooldown

		if !highSince.IsZero() && now.Sub(highSince) >= c.cfg.SustainWindow && cooled && active < c.cfg.MaxNodes {
			if err := c.spawn(); err == nil {
				c.stats.scaleUps.Add(1)
				lastScale = now
			}
			highSince = time.Time{}
		}
		if !lowSince.IsZero() && now.Sub(lowSince) >= c.cfg.SustainWindow && cooled && active > c.cfg.MinNodes {
			if c.retireOne() {
				c.stats.scaleDowns.Add(1)
				lastScale = now
			}
			lowSince = time.Time{}
		}
	}
}

// fleetLoad returns the number of active nodes and their summed load.
func (c *Cluster) fleetLoad() (active, load int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range c.slots {
		if n == nil || n.stateNow() != NodeActive {
			continue
		}
		active++
		load += n.load()
	}
	return active, load
}

// retireOne drains and removes the highest-slot active node (highest slot
// so the consistent-hash ring loses its newest vnodes — long-lived keyed
// clients on the base fleet keep their affinity). The drain runs
// asynchronously: the node leaves routing immediately, finishes its
// admitted work, then its slot empties.
func (c *Cluster) retireOne() bool {
	c.mu.Lock()
	var victim *node
	for i := len(c.slots) - 1; i >= 0; i-- {
		if n := c.slots[i]; n != nil && n.stateNow() == NodeActive {
			victim = n
			break
		}
	}
	if victim == nil {
		c.mu.Unlock()
		return false
	}
	victim.setDraining()
	c.ring = buildRing(c.slots)
	c.mu.Unlock()

	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		victim.srv.Shutdown(ctx)
		c.mu.Lock()
		if c.slots[victim.slot] == victim {
			c.slots[victim.slot] = nil
			c.ring = buildRing(c.slots)
		}
		c.mu.Unlock()
	}()
	return true
}
