package cluster

import (
	"sync"
	"time"

	"seneca/internal/serve"
)

// NodeState is one replica's routing position in the fleet.
type NodeState int32

// Node states. A node starts Active; FailThreshold consecutive dispatch
// failures eject it (traffic stops, EjectCooldown passes, then a single
// probe request tests it back in — the per-runner breaker of PR 5
// generalized one level up, to the whole replica); Draining nodes are being
// retired or rolled and accept no new traffic.
const (
	NodeActive NodeState = iota
	NodeDraining
	NodeEjected
)

// String returns the lowercase node-state name used in metrics labels and
// the /healthz body.
func (s NodeState) String() string {
	switch s {
	case NodeActive:
		return "active"
	case NodeDraining:
		return "draining"
	case NodeEjected:
		return "ejected"
	}
	return "unknown"
}

// node wraps one in-process serve.Server replica with the cluster's view
// of its health. The serve tier underneath still self-heals its own runner
// pool; the node layer decides whether the replica as a whole receives
// traffic.
type node struct {
	slot int // fleet slot index, stable across the node's lifetime
	gen  int // spawn generation (monotonic across the cluster's lifetime)
	srv  *serve.Server

	mu        sync.Mutex
	state     NodeState
	fails     int       // consecutive dispatch failures
	openUntil time.Time // when an ejected node admits its probe
	probing   bool      // an eject probe request is in flight
}

// load is the routing signal: queued requests plus in-flight batches.
// Reads are atomic on the serve side, so placement scans stay cheap.
func (n *node) load() int {
	return n.srv.QueueDepth() + n.srv.InFlightBatches()
}

// stateNow returns the node's current state.
func (n *node) stateNow() NodeState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// routable reports whether the node may receive one request now. An
// ejected node past its cooldown admits exactly one probe at a time; the
// probe return marks the claim as that probe so the caller can release it
// if the request never reaches the replica.
func (n *node) routable(now time.Time) (ok, probe bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.state {
	case NodeActive:
		return true, false
	case NodeEjected:
		if n.probing || now.Before(n.openUntil) {
			return false, false
		}
		n.probing = true
		return true, true
	}
	return false, false
}

// probeEta reports whether the node is ejected and, if so, how long until
// it admits its probe (zero when the cooldown has passed but the probe is
// claimed or about to be).
func (n *node) probeEta(now time.Time) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state != NodeEjected {
		return 0, false
	}
	if now.Before(n.openUntil) {
		return n.openUntil.Sub(now), true
	}
	return 0, true
}

// releaseProbe undoes a probe claim whose request never completed against
// the replica (context expired first), so an ejected node cannot leak its
// single probe slot.
func (n *node) releaseProbe() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.probing = false
}

// recordSuccess clears the failure streak and readmits an ejected node
// whose probe just came back healthy.
func (n *node) recordSuccess() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fails = 0
	n.probing = false
	if n.state == NodeEjected {
		n.state = NodeActive
	}
}

// recordFailure counts one dispatch failure and returns true when it
// ejected the node — at threshold consecutive failures from Active, or
// immediately on a failed probe (which restarts the cooldown).
func (n *node) recordFailure(threshold int, cooldown time.Duration) (ejected bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fails++
	n.probing = false
	switch n.state {
	case NodeActive:
		if n.fails < threshold {
			return false
		}
	case NodeDraining:
		return false
	case NodeEjected:
		n.openUntil = time.Now().Add(cooldown)
		return false
	}
	n.state = NodeEjected
	n.openUntil = time.Now().Add(cooldown)
	return true
}

// setDraining removes the node from routing ahead of a retire or rolling
// restart. In-flight and queued work still completes (serve.Shutdown
// drains it); only new placement skips the node.
func (n *node) setDraining() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.state = NodeDraining
}
