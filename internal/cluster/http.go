package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"seneca/internal/serve"
)

// Handler returns the HTTP front door of the fleet:
//
//	POST /v1/segment                one CT slice in, one mask out; the
//	                                X-Seneca-Tier header ("interactive",
//	                                default, or "batch") selects the
//	                                admission tier and X-Seneca-Key pins
//	                                a consistent-hash position
//	GET  /healthz                   fleet health (degraded vs 503)
//	GET  /statz                     Stats snapshot as JSON
//	GET  /metrics                   Prometheus text format
//	POST /v1/admin/rolling-restart  replace every node in turn (202)
//
// Request bodies accept the same three encodings as a single serve.Server
// (octet-stream, JSON, NIfTI). Responses carry X-Seneca-Mask-Shape,
// X-Seneca-Batch and X-Seneca-Node (the slot that served the request).
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/segment", c.handleSegment)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/statz", c.handleStatz)
	mux.Handle("/metrics", c.reg.Handler())
	mux.HandleFunc("/v1/admin/rolling-restart", c.handleRollingRestart)
	return mux
}

func (c *Cluster) handleSegment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tier := TierInteractive
	switch r.Header.Get("X-Seneca-Tier") {
	case "", "interactive":
	case "batch":
		tier = TierBatch
	default:
		http.Error(w, "cluster: X-Seneca-Tier must be \"interactive\" or \"batch\"", http.StatusBadRequest)
		return
	}
	img, status, err := serve.DecodeSegmentRequest(w, r, c.inC, c.inH, c.inW, c.cfg.MaxBodyBytes)
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	ctx, cancel, ok := serve.ContextWithDeadlineHeader(r)
	if !ok {
		http.Error(w, fmt.Sprintf("cluster: bad %s header", serve.DeadlineHeader), http.StatusBadRequest)
		return
	}
	defer cancel()
	res, err := c.Do(ctx, img, r.Header.Get("X-Seneca-Key"), tier)
	switch {
	case err == nil:
	case errors.Is(err, ErrSaturated), errors.Is(err, serve.ErrQueueFull):
		secs := int(c.RetryAfter().Seconds() + 0.999)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining), errors.Is(err, serve.ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Seneca-Mask-Shape", fmt.Sprintf("%dx%d", c.inH, c.inW))
	h.Set("X-Seneca-Batch", strconv.Itoa(res.Occupancy))
	h.Set("X-Seneca-Node", strconv.Itoa(res.Node))
	if res.Hedged {
		h.Set(serve.HedgedHeader, "1")
	}
	w.Write(res.Mask)
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	h := c.Health()
	// Degraded still answers 200 — the fleet serves on its remaining
	// nodes. Draining or zero routable nodes is the 503 case.
	if h.Status == "draining" || h.Status == "unavailable" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

func (c *Cluster) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Stats())
}

func (c *Cluster) handleRollingRestart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if c.Draining() {
		http.Error(w, ErrDraining.Error(), http.StatusServiceUnavailable)
		return
	}
	// The restart outlives the admin request: run it in the background
	// with its own generous deadline and report 202. Progress shows up in
	// /statz (rolling_restarts) and /healthz (degraded while a node is
	// out).
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		c.RollingRestart(ctx)
	}()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "{\"status\":\"restarting\",\"nodes\":%d}\n", c.Health().Nodes)
}
