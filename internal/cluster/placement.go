package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"time"
)

// Policy selects how the front door spreads requests across the fleet.
type Policy string

// Placement policies.
const (
	// PolicyLeastLoaded routes every request to the active node with the
	// smallest load (queue depth + in-flight batches). Keyless requests
	// under PolicyHash also fall back to this.
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyHash consistent-hashes the request key (X-Seneca-Key header)
	// onto a 64-vnode ring, so a keyed client keeps hitting the same node
	// while the topology is stable and only 1/N of keys move when it
	// isn't.
	PolicyHash Policy = "hash"
)

// vnodesPerSlot is how many virtual nodes each fleet slot contributes to
// the consistent-hash ring; 64 keeps the key share per node within a few
// percent of uniform.
const vnodesPerSlot = 64

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	slot int
}

// ring is an immutable consistent-hash ring snapshot; the cluster rebuilds
// it under its topology lock whenever a node joins or leaves.
type ring struct {
	points []ringPoint
}

// buildRing hashes vnodesPerSlot virtual nodes per present slot.
func buildRing(slots []*node) *ring {
	r := &ring{}
	for _, n := range slots {
		if n == nil {
			continue
		}
		for v := 0; v < vnodesPerSlot; v++ {
			h := hashKey("slot-" + strconv.Itoa(n.slot) + "-vnode-" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, slot: n.slot})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// walk returns the distinct slot order encountered walking the ring
// clockwise from h — the preference list for a key, so an ineligible
// primary falls through to the next-nearest node instead of rerolling.
func (r *ring) walk(h uint64) []int {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool)
	var order []int
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.slot] {
			seen[p.slot] = true
			order = append(order, p.slot)
		}
	}
	return order
}

// hashKey is FNV-1a over the key bytes, finished with a splitmix64-style
// avalanche. Raw FNV of short keys that differ only in their last byte
// lands within ~one prime multiple of each other — a band far narrower
// than the gap between ring points, which would park every "patient-N"
// key on the same node. The finisher spreads such neighbours across the
// whole 64-bit ring.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pick chooses the node for one request: ring order for keyed requests
// under PolicyHash, ascending load otherwise. skip holds nodes already
// tried this dispatch; avoid (-1 for none) is a hard slot exclusion that
// survives skip resets — a hedge leg must never land on its primary's
// node. Batch-tier requests are only eligible for nodes below the batch
// admission water mark — that is the preemption mechanism: the top
// (1−BatchWaterFrac) of every queue is reserved for interactive traffic,
// so batch always sheds first. The probe return marks an eject probe claim
// (see node.routable).
func (c *Cluster) pick(key string, tier Tier, skip map[*node]bool, avoid int) (n *node, probe bool) {
	c.mu.RLock()
	nodes := make([]*node, 0, len(c.slots))
	for _, nd := range c.slots {
		if nd != nil {
			nodes = append(nodes, nd)
		}
	}
	rg := c.ring
	c.mu.RUnlock()

	var order []*node
	if c.cfg.Placement == PolicyHash && key != "" {
		bySlot := make(map[int]*node, len(nodes))
		for _, nd := range nodes {
			bySlot[nd.slot] = nd
		}
		for _, slot := range rg.walk(hashKey(key)) {
			if nd := bySlot[slot]; nd != nil {
				order = append(order, nd)
			}
		}
	} else {
		order = append(order, nodes...)
		sort.Slice(order, func(i, j int) bool {
			li, lj := order[i].load(), order[j].load()
			if li != lj {
				return li < lj
			}
			return order[i].slot < order[j].slot // deterministic ties
		})
	}

	now := time.Now()
	for _, nd := range order {
		if skip[nd] || nd.slot == avoid {
			continue
		}
		if tier == TierBatch && nd.load() >= c.batchWater {
			continue
		}
		if ok, pr := nd.routable(now); ok {
			return nd, pr
		}
	}
	return nil, false
}
