// Package cluster is the multi-node scale-out tier of the SENECA stack: a
// front-door router that spreads segmentation traffic across a fleet of
// in-process serve.Server replicas ("nodes" — each models one deployed
// edge board with its own runner pool, admission queue and self-healing
// breakers), the direct path from the paper's single ZCU104 to the
// ROADMAP's millions-of-users north star.
//
// Architecture, front to back:
//
//	HTTP front door    POST /v1/segment (X-Seneca-Tier, X-Seneca-Key),
//	                   GET /healthz, /statz, /metrics,
//	                   POST /v1/admin/rolling-restart
//	placement          pluggable: consistent-hash on the request key
//	                   (64 vnodes/slot) or least-loaded by queue depth
//	tier admission     two priorities per node — interactive requests may
//	                   fill the whole admission queue, batch (study slice)
//	                   traffic only up to BatchWaterFrac of it, so
//	                   interactive preempts batch and batch always sheds
//	                   first
//	health view        consecutive dispatch failures eject a node from
//	                   routing; after EjectCooldown one probe request
//	                   tests it back in (the per-runner breaker of PR 5,
//	                   generalized to the replica level)
//	autoscaler         queue-depth-driven: aggregate depth above the
//	                   high-water fraction for SustainWindow spawns a
//	                   replica (up to MaxNodes); below the low-water
//	                   fraction it drains and retires one (down to
//	                   MinNodes)
//	load shedding      a fleet with no admitting node rejects with
//	                   ErrSaturated → HTTP 429 + Retry-After
//
// Interactive requests carrying a deadline may hedge: past HedgeFraction
// of the remaining deadline a second dispatch launches on a different
// healthy node, first response wins and the loser is cancelled (its queued
// job is dropped by the serve tier before consuming board time). Retries
// and hedges share a per-window SRE-style retry budget so a sick fleet
// cannot melt itself with a retry storm.
//
// Every dispatch consults the fault point "cluster.node.dispatch" plus a
// per-slot "cluster.node.serve.<slot>", so chaos tests can kill a node
// mid-burst — or make exactly one node tail-latency slow (fault slow=
// programs) — and assert that redispatch and hedging lose nothing.
package cluster

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"seneca/internal/fault"
	"seneca/internal/obs"
	"seneca/internal/serve"
	"seneca/internal/tensor"
)

// Tier is a request's admission priority.
type Tier int

// Admission tiers. Interactive requests (POST /v1/segment) may fill a
// node's whole admission queue; batch requests (study slice fan-out) only
// its lower BatchWaterFrac, so under pressure batch sheds strictly before
// interactive.
const (
	TierInteractive Tier = iota
	TierBatch
)

// String returns the lowercase tier name used in metrics labels.
func (t Tier) String() string {
	if t == TierBatch {
		return "batch"
	}
	return "interactive"
}

// Admission errors.
var (
	// ErrSaturated reports that no node in the fleet can admit the request
	// at its tier; the HTTP layer maps it to 429 with a Retry-After hint.
	ErrSaturated = errors.New("cluster: fleet saturated")
	// ErrDraining reports that Shutdown has begun and the cluster admits
	// no new work; the HTTP layer maps it to 503.
	ErrDraining = errors.New("cluster: cluster is draining")
)

// Config tunes the cluster. The zero value is usable: every field defaults
// to the values noted below.
type Config struct {
	// MinNodes is the floor the autoscaler never drains below (and the
	// fleet size at startup). Default 1.
	MinNodes int
	// MaxNodes caps the fleet. Default max(MinNodes, 4).
	MaxNodes int
	// Placement selects the routing policy. Default PolicyLeastLoaded.
	Placement Policy
	// HighWaterFrac: aggregate queue depth above this fraction of
	// aggregate capacity, sustained for SustainWindow, spawns a node.
	// Default 0.75.
	HighWaterFrac float64
	// LowWaterFrac: aggregate depth below this fraction, sustained,
	// retires a node. Default 0.10.
	LowWaterFrac float64
	// SustainWindow is how long a water mark must hold before the
	// autoscaler acts. Default 250ms.
	SustainWindow time.Duration
	// ScaleCooldown is the minimum gap between scaling actions. Default 1s.
	ScaleCooldown time.Duration
	// EvalInterval is the autoscaler's sampling period. Default 25ms.
	EvalInterval time.Duration
	// BatchWaterFrac is the per-node queue fraction batch traffic may
	// occupy; the rest is reserved for interactive. Default 0.5.
	BatchWaterFrac float64
	// FailThreshold is how many consecutive dispatch failures eject a node
	// from routing. Default 3.
	FailThreshold int
	// EjectCooldown is how long an ejected node waits before a probe
	// request tests it back in. Default 500ms.
	EjectCooldown time.Duration
	// MaxAttempts bounds how many nodes one request may be dispatched to
	// before its error surfaces. Default 3.
	MaxAttempts int
	// HedgeFraction enables cross-node hedging of interactive requests:
	// one still waiting after this fraction of its remaining deadline gets
	// a second dispatch to a different healthy node, first response wins,
	// loser cancelled. 0 (default) disables hedging. Sensible values sit
	// around 0.2–0.5: small enough to rescue the deadline, large enough
	// that the common case never pays for two dispatches.
	HedgeFraction float64
	// HedgeAfter is the hedge threshold for interactive requests that
	// carry no deadline, when HedgeFraction is set. 0 (default) means
	// deadline-less requests never hedge.
	HedgeAfter time.Duration
	// RetryBudgetFrac bounds retries and hedges per RetryBudgetWindow to
	// this fraction of admitted requests (with a RetryBudgetMin floor), so
	// a sick fleet cannot multiply its own load with a retry storm.
	// Default 0.1.
	RetryBudgetFrac float64
	// RetryBudgetMin is the per-window retry floor, so low traffic can
	// still retry at all. Default 10.
	RetryBudgetMin int
	// RetryBudgetWindow is the budget accounting window. Default 10s.
	RetryBudgetWindow time.Duration
	// MaxBodyBytes caps HTTP request bodies on the front door. Default
	// 256 MiB.
	MaxBodyBytes int64
	// Metrics is the observability registry the cluster reports into. nil
	// gives the cluster a private registry.
	Metrics *obs.Registry
	// Faults is the fault-injection registry the dispatch path consults.
	// nil uses fault.Default.
	Faults *fault.Registry
}

func (c Config) withDefaults() Config {
	if c.MinNodes <= 0 {
		c.MinNodes = 1
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 4
	}
	if c.MaxNodes < c.MinNodes {
		c.MaxNodes = c.MinNodes
	}
	if c.Placement == "" {
		c.Placement = PolicyLeastLoaded
	}
	if c.HighWaterFrac <= 0 || c.HighWaterFrac > 1 {
		c.HighWaterFrac = 0.75
	}
	if c.LowWaterFrac <= 0 || c.LowWaterFrac >= c.HighWaterFrac {
		c.LowWaterFrac = 0.10
	}
	if c.SustainWindow <= 0 {
		c.SustainWindow = 250 * time.Millisecond
	}
	if c.ScaleCooldown <= 0 {
		c.ScaleCooldown = time.Second
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 25 * time.Millisecond
	}
	if c.BatchWaterFrac <= 0 || c.BatchWaterFrac > 1 {
		c.BatchWaterFrac = 0.5
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.EjectCooldown <= 0 {
		c.EjectCooldown = 500 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudgetFrac <= 0 {
		c.RetryBudgetFrac = 0.1
	}
	if c.RetryBudgetMin <= 0 {
		c.RetryBudgetMin = 10
	}
	if c.RetryBudgetWindow <= 0 {
		c.RetryBudgetWindow = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	return c
}

// Result is one completed dispatch: the mask, the micro-batch occupancy it
// rode in on its node, the slot of the node that served it, and whether a
// hedge leg was launched for it.
type Result struct {
	Mask      []uint8
	Occupancy int
	Node      int
	Hedged    bool
}

// Cluster is the sharded serving fleet. Construct with New, release with
// Shutdown.
type Cluster struct {
	cfg     Config
	factory func() (*serve.Server, error)
	faults  *fault.Registry
	budget  *retryBudget

	// nodePoints[i] is the per-slot fault point name consulted before each
	// dispatch to slot i ("cluster.node.serve.<slot>"), precomputed so the
	// hot path never formats strings.
	nodePoints []string

	mu      sync.RWMutex
	slots   []*node // fixed MaxNodes slots; nil = empty
	ring    *ring   // consistent-hash snapshot, rebuilt on topology change
	nextGen int
	closing bool

	restartMu sync.Mutex // serializes rolling restarts

	submits  sync.WaitGroup // dispatches in flight through the front door
	ctlStop  chan struct{}
	ctlDone  sync.WaitGroup
	stopOnce sync.Once

	stats clusterStats
	reg   *obs.Registry

	mLatency    [2]*obs.Histogram // by Tier
	mRouteDepth *obs.Histogram

	// Model geometry, captured from the first node so the HTTP front door
	// decodes without binding to any replica.
	inC, inH, inW int
	classes       int
	model         string
	nodeQueueCap  int
	batchWater    int // absolute per-node load bound for batch admission
}

// New builds a fleet of cfg.MinNodes replicas via factory (each call must
// return a fresh, started serve.Server — one per simulated board) and
// starts the autoscaler. Callers must Shutdown to stop it.
func New(factory func() (*serve.Server, error), cfg Config) (*Cluster, error) {
	if factory == nil {
		return nil, errors.New("cluster: nil node factory")
	}
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		factory: factory,
		faults:  cfg.Faults,
		budget:  newRetryBudget(cfg.RetryBudgetFrac, cfg.RetryBudgetMin, cfg.RetryBudgetWindow),
		slots:   make([]*node, cfg.MaxNodes),
		ctlStop: make(chan struct{}),
	}
	if c.faults == nil {
		c.faults = fault.Default
	}
	c.nodePoints = make([]string, cfg.MaxNodes)
	for i := range c.nodePoints {
		c.nodePoints[i] = "cluster.node.serve." + strconv.Itoa(i)
	}
	for i := 0; i < cfg.MinNodes; i++ {
		if err := c.spawn(); err != nil {
			// Unwind the partial fleet before reporting.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for _, n := range c.slots {
				if n != nil {
					n.srv.Shutdown(ctx)
				}
			}
			return nil, err
		}
	}
	first := c.slots[0].srv
	c.inC, c.inH, c.inW = first.InputShape()
	c.classes = first.NumClasses()
	c.model = first.ModelName()
	c.nodeQueueCap = first.QueueCap()
	c.batchWater = int(cfg.BatchWaterFrac * float64(c.nodeQueueCap))
	if c.batchWater < 1 {
		c.batchWater = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c.initMetrics(reg)
	c.ctlDone.Add(1)
	go c.controlLoop()
	return c, nil
}

// spawn builds one replica into the lowest empty slot and rebuilds the
// ring. Callers must not hold c.mu (the factory may be slow).
func (c *Cluster) spawn() error {
	srv, err := c.factory()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, n := range c.slots {
		if n == nil {
			c.slots[i] = &node{slot: i, gen: c.nextGen, srv: srv}
			c.nextGen++
			c.ring = buildRing(c.slots)
			return nil
		}
	}
	// No empty slot (racing scale-ups); discard the extra replica.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	return errors.New("cluster: fleet already at MaxNodes")
}

// Submit admits one CHW image on the interactive tier and blocks until its
// mask is ready. It is the in-process equivalent of POST /v1/segment.
func (c *Cluster) Submit(ctx context.Context, img *tensor.Tensor) ([]uint8, error) {
	res, err := c.Do(ctx, img, "", TierInteractive)
	return res.Mask, err
}

// SubmitBatch is Submit on the batch tier — the admission class for study
// slice fan-out and any other background traffic that must never crowd out
// interactive requests.
func (c *Cluster) SubmitBatch(ctx context.Context, img *tensor.Tensor) ([]uint8, error) {
	res, err := c.Do(ctx, img, "", TierBatch)
	return res.Mask, err
}

// Do dispatches one request through placement, tier admission and the
// per-node health view. key selects the consistent-hash position under
// PolicyHash ("" falls back to least-loaded). A node that fails mid-burst
// is ejected and the request redispatches to a healthy node, up to
// MaxAttempts (gated by the fleet retry budget); a fleet with no admitting
// node sheds with ErrSaturated. Interactive requests with a deadline may
// hedge onto a second node when HedgeFraction is set — see dispatch.
func (c *Cluster) Do(ctx context.Context, img *tensor.Tensor, key string, tier Tier) (Result, error) {
	c.mu.RLock()
	if c.closing {
		c.mu.RUnlock()
		return Result{}, ErrDraining
	}
	c.submits.Add(1)
	c.mu.RUnlock()
	defer c.submits.Done()

	t0 := time.Now()
	c.stats.submitted[tier].Add(1)
	c.budget.noteRequest()
	res, hedged, err := c.dispatch(ctx, img, key, tier)
	res.Hedged = hedged
	switch {
	case err == nil:
		c.stats.goodput[tier].Add(1)
		c.mLatency[tier].Observe(time.Since(t0).Seconds())
		return res, nil
	case ctx.Err() != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)):
		// The client's own deadline or disconnect, not a fleet refusal.
		return Result{}, err
	default:
		c.stats.shed[tier].Add(1)
		return Result{}, err
	}
}

// dispatchOnce runs one dispatch leg: placement, tier admission, health
// charging and budgeted failure redispatch, with no tier accounting (Do
// does that exactly once however many legs ran). self, when non-nil, is
// updated with the slot the leg is currently dispatched to; avoid, when
// non-nil, names a leg whose current node is hard-excluded from placement
// — that is how a hedge lands on a different node than its primary.
func (c *Cluster) dispatchOnce(ctx context.Context, img *tensor.Tensor, key string, tier Tier, self, avoid *leg) (Result, error) {
	skip := make(map[*node]bool)
	// pickNode widens the search before giving up: once every node has
	// been tried this dispatch, the skip set resets so redispatch may
	// revisit a node (its queue may have drained, its probe may be due).
	// The avoid leg's node survives every reset.
	pickNode := func() (*node, bool) {
		n, probe := c.pick(key, tier, skip, avoid.slot())
		if n == nil && len(skip) > 0 {
			skip = make(map[*node]bool)
			n, probe = c.pick(key, tier, skip, avoid.slot())
		}
		return n, probe
	}
	// With every node ejected and cooling, the only way the fleet regains
	// capacity is a probe — the same reasoning as the serve tier's
	// claimWorker polling. Waiting for one is bounded by maxWait and the
	// context; past that, load shedding takes over.
	maxWait := time.Duration(c.cfg.MaxAttempts) * c.cfg.EjectCooldown
	var waited time.Duration
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		n, probe := pickNode()
		if n == nil {
			if eta, anyEjected := c.probeEta(time.Now()); anyEjected && waited < maxWait {
				if eta < time.Millisecond {
					eta = time.Millisecond
				}
				if rem := maxWait - waited; eta > rem {
					eta = rem
				}
				waited += eta
				timer := time.NewTimer(eta)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return Result{}, ctx.Err()
				}
				attempt-- // waiting for a probe is not a dispatch attempt
				continue
			}
			// Nothing admits this tier right now: shed. (For batch that can
			// happen while interactive still flows — by design.)
			if lastErr != nil && !errors.Is(lastErr, serve.ErrQueueFull) && !errors.Is(lastErr, serve.ErrDraining) {
				return Result{}, lastErr
			}
			return Result{}, ErrSaturated
		}
		c.mRouteDepth.Observe(float64(n.load()))

		if err := c.faults.CheckCtx(ctx, "cluster.node.dispatch"); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				n.releaseProbe()
				return Result{}, ctxErr
			}
			c.nodeFailure(n)
			if !c.budget.allow() {
				c.stats.retryDenied.Add(1)
				return Result{}, err
			}
			c.stats.redispatched.Add(1)
			skip[n] = true
			lastErr = err
			continue
		}

		if self != nil {
			self.current.Store(int32(n.slot))
		}
		// Per-slot chaos seam: slow-node programs stall exactly one
		// replica's dispatches here, the condition hedging exists for.
		if err := c.faults.CheckCtx(ctx, c.nodePoints[n.slot]); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				n.releaseProbe()
				return Result{}, ctxErr
			}
			c.nodeFailure(n)
			if !c.budget.allow() {
				c.stats.retryDenied.Add(1)
				return Result{}, err
			}
			c.stats.redispatched.Add(1)
			skip[n] = true
			lastErr = err
			continue
		}

		mask, occ, err := n.srv.Segment(ctx, img)
		switch {
		case err == nil:
			n.recordSuccess()
			return Result{Mask: mask, Occupancy: occ, Node: n.slot}, nil
		case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrDraining):
			// Saturated or mid-restart, not sick: route around it without
			// charging its health.
			if probe {
				n.releaseProbe()
			}
			skip[n] = true
			lastErr = err
		case ctx.Err() != nil:
			// The client's deadline, not the node's fault.
			if probe {
				n.releaseProbe()
			}
			return Result{}, ctx.Err()
		default:
			// The replica's own self-healing budget is spent — that is a
			// node-level failure. Eject it if the streak says so and retry
			// elsewhere.
			c.nodeFailure(n)
			if !c.budget.allow() {
				c.stats.retryDenied.Add(1)
				return Result{}, err
			}
			c.stats.redispatched.Add(1)
			skip[n] = true
			lastErr = err
		}
	}
	if lastErr != nil && !errors.Is(lastErr, serve.ErrQueueFull) && !errors.Is(lastErr, serve.ErrDraining) {
		return Result{}, lastErr
	}
	return Result{}, ErrSaturated
}

// probeEta scans the fleet for ejected nodes and returns the soonest wait
// until one admits its probe, plus whether any ejected node exists at all.
// Dispatch uses it to decide between waiting out a fleet-wide ejection and
// shedding outright.
func (c *Cluster) probeEta(now time.Time) (time.Duration, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var soonest time.Duration
	any := false
	for _, n := range c.slots {
		if n == nil {
			continue
		}
		eta, ejected := n.probeEta(now)
		if !ejected {
			continue
		}
		if !any || eta < soonest {
			soonest = eta
		}
		any = true
	}
	return soonest, any
}

// nodeFailure charges one dispatch failure against a node's health view.
func (c *Cluster) nodeFailure(n *node) {
	if n.recordFailure(c.cfg.FailThreshold, c.cfg.EjectCooldown) {
		c.stats.ejections.Add(1)
	}
}

// RetryAfter estimates how long a shed client should back off: one node's
// drain estimate divided across the active fleet.
func (c *Cluster) RetryAfter() time.Duration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var d time.Duration
	active := 0
	for _, n := range c.slots {
		if n == nil {
			continue
		}
		if d == 0 {
			d = n.srv.RetryAfter()
		}
		if n.stateNow() == NodeActive {
			active++
		}
	}
	if active > 1 {
		d /= time.Duration(active)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// InputShape returns the CHW input geometry of the served model.
func (c *Cluster) InputShape() (ch, h, w int) { return c.inC, c.inH, c.inW }

// NumClasses returns the class count of the served model's output masks.
func (c *Cluster) NumClasses() int { return c.classes }

// Draining reports whether Shutdown has begun.
func (c *Cluster) Draining() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.closing
}

// BatchTier returns a Segmenter-shaped view of the cluster whose Submit
// routes on the batch tier — hand it to study.New so whole-volume slice
// traffic rides the preemptable admission class while POST /v1/segment
// stays interactive.
func (c *Cluster) BatchTier() *BatchView { return &BatchView{c: c} }

// BatchView adapts a Cluster to the study.Segmenter interface on the batch
// tier.
type BatchView struct{ c *Cluster }

// Submit segments one CHW slice on the batch tier.
func (b *BatchView) Submit(ctx context.Context, img *tensor.Tensor) ([]uint8, error) {
	return b.c.SubmitBatch(ctx, img)
}

// InputShape returns the model's CHW input geometry.
func (b *BatchView) InputShape() (ch, h, w int) { return b.c.InputShape() }

// NumClasses returns the class count of output masks.
func (b *BatchView) NumClasses() int { return b.c.NumClasses() }

// Shutdown stops the autoscaler and new admissions, waits for dispatches
// already through the front door, then drains every node (each node drains
// its own admitted queue — no admitted work is dropped). ctx bounds how
// long the caller waits. Shutdown is idempotent.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closing = true
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.ctlStop) })
	c.ctlDone.Wait()

	drained := make(chan struct{})
	go func() {
		c.submits.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}

	c.mu.RLock()
	nodes := make([]*node, 0, len(c.slots))
	for _, n := range c.slots {
		if n != nil {
			nodes = append(nodes, n)
		}
	}
	c.mu.RUnlock()

	errs := make(chan error, len(nodes))
	for _, n := range nodes {
		go func(n *node) { errs <- n.srv.Shutdown(ctx) }(n)
	}
	var first error
	for range nodes {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RollingRestart replaces every node in turn: each is removed from routing
// (draining), fully drained of admitted work, shut down, rebuilt via the
// factory and swapped back in before the next one starts — so the fleet
// never loses more than one node of capacity and in-flight requests always
// complete. Restarts serialize; ctx bounds each node's drain.
func (c *Cluster) RollingRestart(ctx context.Context) error {
	c.restartMu.Lock()
	defer c.restartMu.Unlock()
	for i := 0; i < len(c.slots); i++ {
		c.mu.Lock()
		if c.closing {
			c.mu.Unlock()
			return ErrDraining
		}
		n := c.slots[i]
		if n == nil || n.stateNow() != NodeActive {
			c.mu.Unlock()
			continue
		}
		n.setDraining()
		c.ring = buildRing(c.slots) // ring keeps the slot; pick() skips draining nodes
		c.mu.Unlock()

		// Chaos seam: tests program a stall here to hold a node in the
		// draining state (observing the degraded /healthz window), or an
		// error to abort the roll mid-fleet.
		if err := c.faults.CheckCtx(ctx, "cluster.node.restart"); err != nil {
			// Abort the roll: finish this node's drain off to the side so
			// its admitted work still completes, then drop the slot.
			go func() {
				dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				n.srv.Shutdown(dctx)
			}()
			c.clearSlot(i)
			return err
		}
		if err := n.srv.Shutdown(ctx); err != nil {
			c.clearSlot(i)
			return err
		}
		srv, err := c.factory()
		if err != nil {
			c.clearSlot(i)
			return err
		}
		c.mu.Lock()
		c.slots[i] = &node{slot: i, gen: c.nextGen, srv: srv}
		c.nextGen++
		c.ring = buildRing(c.slots)
		c.mu.Unlock()
		c.stats.restarts.Add(1)
	}
	return nil
}

// clearSlot empties a slot after a failed replace, leaving the fleet one
// node smaller rather than routing to a dead replica.
func (c *Cluster) clearSlot(i int) {
	c.mu.Lock()
	c.slots[i] = nil
	c.ring = buildRing(c.slots)
	c.mu.Unlock()
}
