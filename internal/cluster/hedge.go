package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"seneca/internal/tensor"
)

// retryBudget is the fleet's SRE-style retry budget: per window, at most
// max(Min, Frac × admitted requests) dispatches may be retried or hedged.
// A healthy fleet never notices it; a sick fleet is protected from melting
// itself with a retry storm, because once the budget is spent failures
// surface instead of multiplying.
type retryBudget struct {
	frac   float64
	min    int
	window time.Duration

	mu       sync.Mutex
	start    time.Time
	requests int
	spent    int
}

func newRetryBudget(frac float64, min int, window time.Duration) *retryBudget {
	return &retryBudget{frac: frac, min: min, window: window, start: time.Now()}
}

// roll resets the window once it has fully elapsed. Callers hold b.mu.
func (b *retryBudget) roll(now time.Time) {
	if now.Sub(b.start) >= b.window {
		b.start = now
		b.requests = 0
		b.spent = 0
	}
}

// noteRequest counts one admitted request into the current window.
func (b *retryBudget) noteRequest() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.roll(time.Now())
	b.requests++
}

// allow consumes one retry token if the window still has one.
func (b *retryBudget) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.roll(time.Now())
	limit := int(b.frac * float64(b.requests))
	if limit < b.min {
		limit = b.min
	}
	if b.spent >= limit {
		return false
	}
	b.spent++
	return true
}

// leg tracks one dispatch attempt's current position in the fleet, so the
// hedge leg can hard-exclude the node the primary is (still) waiting on.
type leg struct {
	current atomic.Int32 // slot currently dispatched to; -1 when none
}

func newLeg() *leg {
	l := &leg{}
	l.current.Store(-1)
	return l
}

func (l *leg) slot() int {
	if l == nil {
		return -1
	}
	return int(l.current.Load())
}

// hedgeDelay decides whether this request may hedge and after how long.
// Hedging applies to interactive requests only (segmentation is
// idempotent, but batch traffic is the preemptable class — doubling it
// under pressure would defeat tier admission): past HedgeFraction of the
// remaining deadline — or HedgeAfter for deadline-less requests — a second
// dispatch launches on a different node.
func (c *Cluster) hedgeDelay(ctx context.Context, tier Tier) (time.Duration, bool) {
	if tier != TierInteractive || c.cfg.HedgeFraction <= 0 {
		return 0, false
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return 0, false
		}
		return time.Duration(c.cfg.HedgeFraction * float64(rem)), true
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter, true
	}
	return 0, false
}

// legOut is one dispatch leg's terminal state.
type legOut struct {
	res Result
	err error
}

// dispatch runs one request, hedged when eligible: the primary leg starts
// immediately; if it is still out when the hedge threshold passes and the
// retry budget admits one more dispatch, a hedge leg launches against a
// different node. First success wins and the loser's context is cancelled
// — its queued job is dropped by the serve tier's batcher before it can
// consume board time. Both legs are always reaped before returning, so
// Shutdown's in-flight accounting stays exact.
func (c *Cluster) dispatch(ctx context.Context, img *tensor.Tensor, key string, tier Tier) (Result, bool, error) {
	delay, eligible := c.hedgeDelay(ctx, tier)
	if !eligible {
		res, err := c.dispatchOnce(ctx, img, key, tier, nil, nil)
		return res, false, err
	}

	primLeg := newLeg()
	primCtx, primCancel := context.WithCancel(ctx)
	defer primCancel()
	primCh := make(chan legOut, 1)
	go func() {
		res, err := c.dispatchOnce(primCtx, img, key, tier, primLeg, nil)
		primCh <- legOut{res: res, err: err}
	}()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case out := <-primCh:
		return out.res, false, out.err
	case <-timer.C:
	}

	// The primary has sat past the hedge threshold. One more dispatch, if
	// the budget allows it; otherwise keep waiting on the primary.
	if !c.budget.allow() {
		c.stats.retryDenied.Add(1)
		out := <-primCh
		return out.res, false, out.err
	}
	c.stats.hedges.Add(1)
	hedCtx, hedCancel := context.WithCancel(ctx)
	defer hedCancel()
	hedCh := make(chan legOut, 1)
	go func() {
		res, err := c.dispatchOnce(hedCtx, img, key, tier, nil, primLeg)
		hedCh <- legOut{res: res, err: err}
	}()

	// First success wins; the loser is cancelled but always reaped. With
	// two failures the primary's error is the request's error (the hedge
	// usually just mirrors it against one fewer node).
	var winner, primErr, hedErr *legOut
	for primCh != nil || hedCh != nil {
		select {
		case out := <-primCh:
			primCh = nil
			if out.err == nil && winner == nil {
				winner = &out
				hedCancel()
			} else if out.err != nil {
				primErr = &out
			}
		case out := <-hedCh:
			hedCh = nil
			if out.err == nil && winner == nil {
				winner = &out
				c.stats.hedgeWins.Add(1)
				primCancel()
			} else if out.err != nil {
				hedErr = &out
			}
		}
	}
	if winner != nil {
		return winner.res, true, nil
	}
	if primErr != nil {
		return Result{}, true, primErr.err
	}
	return Result{}, true, hedErr.err
}
