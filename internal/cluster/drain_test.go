package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"seneca/internal/fault"
	"seneca/internal/serve"
)

// TestClusterDrainCompletesInFlight covers cluster-wide graceful drain:
// requests dispatched before Shutdown complete with correct masks, new
// requests are refused with ErrDraining (503 on the wire), and /healthz
// flips to draining.
func TestClusterDrainCompletesInFlight(t *testing.T) {
	c, _, imgs := newTestCluster(t, Config{MinNodes: 2, MaxNodes: 2}, serve.Config{QueueDepth: 64})

	const inflight = 12
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	masks := make([][]uint8, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			masks[i], errs[i] = c.Submit(context.Background(), imgs[i%len(imgs)])
		}(i)
	}
	// Give the requests a moment to pass the front door, then drain.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	for i := 0; i < inflight; i++ {
		if errs[i] != nil {
			t.Fatalf("in-flight request %d failed during drain: %v", i, errs[i])
		}
		if len(masks[i]) == 0 {
			t.Fatalf("in-flight request %d returned an empty mask", i)
		}
	}
	if _, err := c.Submit(context.Background(), imgs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit: got %v, want ErrDraining", err)
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz: HTTP %d, want 503 (%s)", resp.StatusCode, body)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "draining" || !h.Draining {
		t.Fatalf("draining /healthz body: %s (err %v)", body, err)
	}
}

// TestRollingRestartRoutesAround covers the rolling restart: with traffic
// flowing, every node is replaced in turn; in-flight requests complete,
// new requests route around the restarting node (zero client-visible
// errors on a 2-node fleet), /healthz reports degraded — not 503 — while
// a node is out, and every generation is replaced by the end.
func TestRollingRestartRoutesAround(t *testing.T) {
	c, _, imgs := newTestCluster(t, Config{MinNodes: 2, MaxNodes: 2}, serve.Config{QueueDepth: 64})

	// Hold each node in its draining state for a beat so the health poller
	// below deterministically observes the degraded window (a tiny fleet
	// drains its queue in single-digit milliseconds otherwise).
	fault.Enable("cluster.node.restart", fault.Stall(1, 50*time.Millisecond))
	t.Cleanup(fault.Reset)

	stop := make(chan struct{})
	clientErr := make(chan error, 64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Submit(context.Background(), imgs[i%len(imgs)]); err != nil {
					select {
					case clientErr <- err:
					default:
					}
				}
			}
		}(i)
	}

	sawDegraded := make(chan struct{})
	go func() {
		defer close(sawDegraded)
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			h := c.Health()
			if h.Status == "unavailable" {
				t.Error("healthz reported unavailable (503) during rolling restart of a 2-node fleet")
				return
			}
			if h.Status == "degraded" {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		t.Error("never observed a degraded /healthz during the rolling restart")
	}()

	gensBefore := nodeGens(c)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.RollingRestart(ctx); err != nil {
		t.Fatalf("rolling restart: %v", err)
	}
	<-sawDegraded
	close(stop)
	wg.Wait()

	select {
	case err := <-clientErr:
		t.Fatalf("client saw an error during rolling restart: %v", err)
	default:
	}
	gensAfter := nodeGens(c)
	for slot, gen := range gensAfter {
		if before, ok := gensBefore[slot]; ok && gen == before {
			t.Fatalf("slot %d was not replaced (gen %d before and after)", slot, gen)
		}
	}
	if got := c.Stats().Restarts; got != 2 {
		t.Fatalf("rolling_restarts = %d, want 2", got)
	}
	// The fleet is whole again: healthy, not degraded.
	if h := c.Health(); h.Status != "ok" || h.Active != 2 {
		t.Fatalf("post-restart health: %+v", h)
	}
}

// TestRollingRestartSingleNodeSheds pins the 1-node edge: while the only
// node is down, requests shed (429/503 class errors, never hangs or wrong
// results), and service resumes when the replacement lands.
func TestRollingRestartSingleNodeSheds(t *testing.T) {
	c, _, imgs := newTestCluster(t, Config{MinNodes: 1, MaxNodes: 1, MaxAttempts: 1}, serve.Config{QueueDepth: 8})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.RollingRestart(ctx) }()

	// Whatever happens mid-restart must be a clean shed or a success —
	// never a hang past the deadline or a malformed mask.
	for i := 0; i < 20; i++ {
		rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
		mask, err := c.Submit(rctx, imgs[i%len(imgs)])
		rcancel()
		if err == nil && len(mask) == 0 {
			t.Fatal("empty mask from a successful submit mid-restart")
		}
		if err != nil && !errors.Is(err, ErrSaturated) && !errors.Is(err, serve.ErrDraining) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("mid-restart error class: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("rolling restart: %v", err)
	}
	if _, err := c.Submit(context.Background(), imgs[0]); err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
}

// TestHealthzDegradedVs503OverHTTP drives the distinction end-to-end over
// the wire: a full fleet answers 200 ok, a fleet with an ejected node
// answers 200 degraded, a fleet with zero routable nodes answers 503.
func TestHealthzDegradedVs503OverHTTP(t *testing.T) {
	c, _, _ := newTestCluster(t, Config{MinNodes: 2, MaxNodes: 2, EjectCooldown: time.Hour}, serve.Config{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func() (int, Health) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if code, h := get(); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy fleet: HTTP %d %+v", code, h)
	}

	// Eject node 0 by hand: degraded, still 200.
	c.mu.RLock()
	n0, n1 := c.slots[0], c.slots[1]
	c.mu.RUnlock()
	for i := 0; i < c.cfg.FailThreshold; i++ {
		c.nodeFailure(n0)
	}
	if code, h := get(); code != http.StatusOK || h.Status != "degraded" {
		t.Fatalf("one ejected node: HTTP %d %+v, want 200 degraded", code, h)
	}

	// Eject the second too: zero routable nodes → 503.
	for i := 0; i < c.cfg.FailThreshold; i++ {
		c.nodeFailure(n1)
	}
	if code, h := get(); code != http.StatusServiceUnavailable || h.Status != "unavailable" {
		t.Fatalf("zero routable nodes: HTTP %d %+v, want 503 unavailable", code, h)
	}
}

// TestSegmentOverHTTPWithTierAndNode exercises the front door wire format:
// an octet-stream body comes back as a mask with the serving node's slot
// in X-Seneca-Node, and a bad tier is a 400.
func TestSegmentOverHTTPWithTierAndNode(t *testing.T) {
	c, prog, imgs := newTestCluster(t, Config{MinNodes: 2, MaxNodes: 2}, serve.Config{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	body := serve.EncodeInput(imgs[0].Data)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/segment", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Seneca-Tier", "batch")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mask, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("segment: HTTP %d (%s)", resp.StatusCode, mask)
	}
	g := prog.Graph
	if len(mask) != g.InH*g.InW {
		t.Fatalf("mask is %d bytes, want %d", len(mask), g.InH*g.InW)
	}
	if node := resp.Header.Get("X-Seneca-Node"); node != "0" && node != "1" {
		t.Fatalf("X-Seneca-Node = %q, want a slot id", node)
	}

	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/v1/segment", bytes.NewReader(body))
	req.Header.Set("X-Seneca-Tier", "bogus")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus tier: HTTP %d, want 400", resp.StatusCode)
	}
}

func nodeGens(c *Cluster) map[int]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	gens := make(map[int]int)
	for _, n := range c.slots {
		if n != nil {
			gens[n.slot] = n.gen
		}
	}
	return gens
}
