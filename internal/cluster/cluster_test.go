package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seneca/internal/dpu"
	"seneca/internal/quant"
	"seneca/internal/serve"
	"seneca/internal/tensor"
	"seneca/internal/unet"
	"seneca/internal/xmodel"
)

// testProgram compiles a tiny shape-only-quantized U-Net plus a batch of
// random inputs of the matching geometry (the serve-tier test fixture).
func testProgram(t testing.TB, size, nimgs int) (*xmodel.Program, []*tensor.Tensor) {
	t.Helper()
	cfg := unet.Config{Name: "tiny", Depth: 2, BaseFilters: 8, InChannels: 1, NumClasses: 6, DropoutRate: 0, Seed: 2}
	g := unet.New(cfg).Export(size, size)
	q, err := quant.QuantizeShapeOnly(g)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := xmodel.Compile(q, cfg.Name)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	imgs := make([]*tensor.Tensor, nimgs)
	for i := range imgs {
		img := tensor.New(1, size, size)
		for j := range img.Data {
			img.Data[j] = float32(rng.NormFloat64() * 0.3)
		}
		imgs[i] = img
	}
	return prog, imgs
}

// testFactory returns a node factory building one fresh simulated board
// (own dpu.Device) per replica, plus a count of how many nodes were built.
func testFactory(t testing.TB, prog *xmodel.Program, nodeCfg serve.Config) (func() (*serve.Server, error), *atomic.Int32) {
	t.Helper()
	var built atomic.Int32
	return func() (*serve.Server, error) {
		built.Add(1)
		return serve.New(dpu.New(dpu.ZCU104B4096()), prog, nodeCfg)
	}, &built
}

func newTestCluster(t testing.TB, cfg Config, nodeCfg serve.Config) (*Cluster, *xmodel.Program, []*tensor.Tensor) {
	t.Helper()
	prog, imgs := testProgram(t, 32, 8)
	if nodeCfg.Threads == 0 {
		nodeCfg.Threads = 2
	}
	factory, _ := testFactory(t, prog, nodeCfg)
	c, err := New(factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c, prog, imgs
}

// TestSubmitMatchesDirectExecute proves routing through the fleet changes
// nothing about the masks: every response is bit-identical to direct
// execution on a reference device.
func TestSubmitMatchesDirectExecute(t *testing.T) {
	c, prog, imgs := newTestCluster(t, Config{MinNodes: 2, MaxNodes: 2}, serve.Config{})
	ref := dpu.New(dpu.ZCU104B4096())
	for i, img := range imgs {
		mask, err := c.Submit(context.Background(), img)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Execute(prog, img)
		if err != nil {
			t.Fatal(err)
		}
		if len(mask) != len(want) {
			t.Fatalf("img %d: mask length %d, want %d", i, len(mask), len(want))
		}
		for j := range want {
			if mask[j] != want[j] {
				t.Fatalf("img %d: mask diverges from direct execution at %d", i, j)
			}
		}
	}
	st := c.Stats()
	if st.Interactive.Completed != uint64(len(imgs)) {
		t.Fatalf("interactive completed = %d, want %d", st.Interactive.Completed, len(imgs))
	}
	if st.ActiveNodes != 2 {
		t.Fatalf("active nodes = %d, want 2", st.ActiveNodes)
	}
}

// TestConsistentHashAffinity checks that under PolicyHash a keyed request
// keeps landing on the same node while the topology is stable, and that
// distinct keys spread across the fleet.
func TestConsistentHashAffinity(t *testing.T) {
	c, _, imgs := newTestCluster(t, Config{MinNodes: 3, MaxNodes: 3, Placement: PolicyHash}, serve.Config{})
	keys := []string{"patient-a", "patient-b", "patient-c", "patient-d", "patient-e", "patient-f"}
	first := make(map[string]int)
	used := make(map[int]bool)
	for round := 0; round < 3; round++ {
		for _, key := range keys {
			res, err := c.Do(context.Background(), imgs[round%len(imgs)], key, TierInteractive)
			if err != nil {
				t.Fatal(err)
			}
			if round == 0 {
				first[key] = res.Node
				used[res.Node] = true
				continue
			}
			if res.Node != first[key] {
				t.Fatalf("key %q moved node %d → %d with stable topology", key, first[key], res.Node)
			}
		}
	}
	if len(used) < 2 {
		t.Fatalf("6 keys all hashed to one node of 3: %v", first)
	}
}

// TestBatchShedsBeforeInteractive is the preemption guarantee: with every
// node's queue held above the batch water mark, batch submissions shed
// while interactive submissions still complete.
func TestBatchShedsBeforeInteractive(t *testing.T) {
	// One node, tiny queue, slow coalescing so depth is controllable.
	c, _, imgs := newTestCluster(t,
		Config{MinNodes: 1, MaxNodes: 1, BatchWaterFrac: 0.5, MaxAttempts: 1},
		serve.Config{QueueDepth: 8, MaxBatch: 1, MaxDelay: time.Millisecond})

	// Saturate past the batch water mark (4 of 8) with interactive work.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Submit(context.Background(), imgs[i%len(imgs)])
			}
		}(i)
	}
	// Wait until the pressure is visible to admission.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, load := c.fleetLoad(); load >= c.batchWater {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Skip("could not build queue pressure on this host")
		}
		time.Sleep(time.Millisecond)
	}

	var batchShed, interactiveShed int
	for i := 0; i < 20; i++ {
		if _, err := c.SubmitBatch(context.Background(), imgs[i%len(imgs)]); errors.Is(err, ErrSaturated) {
			batchShed++
		}
		if _, err := c.Submit(context.Background(), imgs[i%len(imgs)]); errors.Is(err, ErrSaturated) {
			interactiveShed++
		}
	}
	close(stop)
	wg.Wait()

	if batchShed == 0 {
		t.Fatalf("no batch submissions shed under sustained pressure (interactive shed %d)", interactiveShed)
	}
	if interactiveShed > 0 {
		t.Fatalf("interactive shed %d times while batch shed %d — interactive must never shed before batch", interactiveShed, batchShed)
	}
	st := c.Stats()
	if st.Batch.Shed == 0 || st.Interactive.Shed != 0 {
		t.Fatalf("stats disagree: batch shed %d, interactive shed %d", st.Batch.Shed, st.Interactive.Shed)
	}
}

// TestAutoscalerSpawnsAndRetires drives sustained pressure into a 1-node
// fleet and requires the autoscaler to spawn up to MaxNodes, then retire
// back down to MinNodes once the load stops.
func TestAutoscalerSpawnsAndRetires(t *testing.T) {
	c, _, imgs := newTestCluster(t,
		Config{
			MinNodes:      1,
			MaxNodes:      3,
			HighWaterFrac: 0.4,
			LowWaterFrac:  0.05,
			SustainWindow: 30 * time.Millisecond,
			ScaleCooldown: 50 * time.Millisecond,
			EvalInterval:  10 * time.Millisecond,
		},
		serve.Config{QueueDepth: 8, MaxBatch: 1, MaxDelay: time.Millisecond})

	// Enough closed-loop clients that even a 3-node fleet sits clearly
	// above the high water mark while they run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Submit(context.Background(), imgs[i%len(imgs)])
			}
		}(i)
	}

	deadline := time.Now().Add(15 * time.Second)
	for c.Stats().ActiveNodes < 3 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("autoscaler never reached MaxNodes: %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if ups := c.Stats().ScaleUps; ups < 2 {
		t.Fatalf("scale-ups = %d, want ≥ 2", ups)
	}

	deadline = time.Now().Add(15 * time.Second)
	for {
		st := c.Stats()
		if st.ActiveNodes == 1 && len(st.Nodes) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("autoscaler never retired back to MinNodes: %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if downs := c.Stats().ScaleDowns; downs < 2 {
		t.Fatalf("scale-downs = %d, want ≥ 2", downs)
	}
}

// TestFleetSaturationSheds verifies cluster-wide load shedding: with every
// node full and MaxAttempts exhausted, Do returns ErrSaturated rather than
// blocking, and the shed counter moves.
func TestFleetSaturationSheds(t *testing.T) {
	c, _, imgs := newTestCluster(t,
		Config{MinNodes: 1, MaxNodes: 1, MaxAttempts: 2},
		serve.Config{QueueDepth: 2, MaxBatch: 1, MaxDelay: 50 * time.Millisecond})

	// Flood far past capacity from many goroutines; at least one must shed.
	var shed atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Submit(context.Background(), imgs[i%len(imgs)]); errors.Is(err, ErrSaturated) {
				shed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("no request shed with a 2-deep queue and 32 concurrent clients")
	}
	if c.Stats().Interactive.Shed == 0 {
		t.Fatal("shed counter did not move")
	}
}
