package cluster

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"seneca/internal/dpu"
	"seneca/internal/fault"
	"seneca/internal/serve"
)

// TestChaosNodeKilledMidBurst is the cluster resilience tentpole: the
// "cluster.node.dispatch" fault point kills node dispatches mid-burst —
// enough consecutive hits to eject whole nodes from routing — and every
// response must still be bit-identical to fault-free execution, with zero
// lost requests. Redispatch must carry every faulted request to a healthy
// node. Runs under -race in `make chaos`.
func TestChaosNodeKilledMidBurst(t *testing.T) {
	c, prog, imgs := newTestCluster(t,
		Config{
			MinNodes:      2,
			MaxNodes:      2,
			FailThreshold: 2,
			EjectCooldown: 50 * time.Millisecond,
			// Every request may ride out several injected kills.
			MaxAttempts: 8,
		},
		serve.Config{QueueDepth: 256, MaxBatch: 4})

	// Fault-free goldens, computed before arming the registry.
	ref := dpu.New(dpu.ZCU104B4096())
	goldens := make([][]uint8, len(imgs))
	for i, img := range imgs {
		want, err := ref.Execute(prog, img)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = want
	}

	// 6 dispatch kills: with FailThreshold 2 that is enough to eject both
	// nodes at least once mid-burst; count-capped so the fleet heals and
	// the burst completes.
	fault.Seed(42)
	fault.Enable("cluster.node.dispatch", fault.Fault{Prob: 1, Count: 6})
	t.Cleanup(fault.Reset)

	const clients, perClient = 8, 15
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		wrong int
		lost  int
	)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				idx := (cl*perClient + i) % len(imgs)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				mask, err := c.Submit(ctx, imgs[idx])
				cancel()
				if err != nil {
					mu.Lock()
					lost++
					mu.Unlock()
					t.Logf("client %d request %d: %v", cl, i, err)
					continue
				}
				ok := len(mask) == len(goldens[idx])
				if ok {
					for j := range mask {
						if mask[j] != goldens[idx][j] {
							ok = false
							break
						}
					}
				}
				if !ok {
					mu.Lock()
					wrong++
					mu.Unlock()
				}
			}
		}(cl)
	}
	wg.Wait()

	if wrong != 0 || lost != 0 {
		t.Fatalf("chaos burst: %d wrong, %d lost of %d (want 0/0)", wrong, lost, clients*perClient)
	}
	if got := fault.Injected("cluster.node.dispatch"); got != 6 {
		t.Fatalf("injected %d dispatch kills, want 6", got)
	}
	st := c.Stats()
	if st.Redispatches < 6 {
		t.Fatalf("redispatches = %d, want ≥ 6 (every kill must re-route)", st.Redispatches)
	}
	if st.Ejections == 0 {
		t.Fatal("no node was ejected despite 6 consecutive-capable dispatch kills")
	}
	if st.Interactive.Completed != uint64(clients*perClient) {
		t.Fatalf("completed %d of %d", st.Interactive.Completed, clients*perClient)
	}

	// The fleet must heal: both nodes back to active once cooldowns pass
	// and probes succeed (driven by the trailing traffic above, or by one
	// extra probe request here).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if h := c.Health(); h.Active == 2 {
			break
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		c.Submit(ctx, imgs[0])
		cancel()
		if time.Now().After(deadline) {
			t.Fatalf("fleet never healed: %+v", c.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosDispatchStallRedispatches programs a latency fault on the
// dispatch point: stalled dispatches must still complete correctly within
// the client deadline via the interruptible fault sleep and redispatch.
func TestChaosDispatchStallRedispatches(t *testing.T) {
	c, prog, imgs := newTestCluster(t,
		Config{MinNodes: 2, MaxNodes: 2, FailThreshold: 2, EjectCooldown: 50 * time.Millisecond, MaxAttempts: 6},
		serve.Config{QueueDepth: 64})

	ref := dpu.New(dpu.ZCU104B4096())
	fault.Seed(7)
	// A stall then an error on the same point: delay+err fires both.
	fault.Enable("cluster.node.dispatch", fault.Fault{Prob: 1, Count: 3, Delay: 20 * time.Millisecond, Err: fault.ErrInjected})
	t.Cleanup(fault.Reset)

	for i, img := range imgs {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		mask, err := c.Submit(ctx, img)
		cancel()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want, err := ref.Execute(prog, img)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if mask[j] != want[j] {
				t.Fatalf("request %d: mask diverges at %d after stalled dispatch", i, j)
			}
		}
	}
	if got := fault.Injected("cluster.node.dispatch"); got != 3 {
		t.Fatalf("injected %d, want 3", got)
	}
}

// TestChaosSlowNodeHedgedMidBurst is the overload-robustness satellite:
// one node of two develops a percentile-shaped latency tail (the slowest
// 20% of its dispatches stall 3s — far past any healthy service time),
// while interactive clients carry 6s deadlines and hedge after a third of
// the remaining budget. Hedging must rescue every stalled request inside
// its deadline with zero wrong, lost or duplicated responses, and the
// hedge counters must reconcile with the fault registry's stall census.
// Runs under -race in `make chaos`.
func TestChaosSlowNodeHedgedMidBurst(t *testing.T) {
	c, prog, imgs := newTestCluster(t,
		Config{
			MinNodes: 2, MaxNodes: 2,
			HedgeFraction:   1.0 / 3,
			RetryBudgetFrac: 1,
			RetryBudgetMin:  1000, // the budget must never be the limiter here
		},
		serve.Config{QueueDepth: 256, MaxBatch: 4})

	// Fault-free goldens, computed before arming the registry.
	ref := dpu.New(dpu.ZCU104B4096())
	goldens := make([][]uint8, len(imgs))
	for i, img := range imgs {
		want, err := ref.Execute(prog, img)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = want
	}

	fault.Seed(11)
	fault.Enable("cluster.node.serve.0", fault.SlowTail(0.8, 3*time.Second))
	t.Cleanup(fault.Reset)

	const clients, perClient = 8, 40
	var (
		wg                             sync.WaitGroup
		mu                             sync.Mutex
		wrong, lost, hedged, completed int
	)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				idx := (cl*perClient + i) % len(imgs)
				ctx, cancel := context.WithTimeout(context.Background(), 6*time.Second)
				res, err := c.Do(ctx, imgs[idx], "", TierInteractive)
				cancel()
				mu.Lock()
				if err != nil {
					lost++
					mu.Unlock()
					t.Logf("client %d request %d: %v", cl, i, err)
					continue
				}
				completed++
				if res.Hedged {
					hedged++
				}
				if !bytes.Equal(res.Mask, goldens[idx]) {
					wrong++
				}
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()

	if wrong != 0 || lost != 0 {
		t.Fatalf("slow-node burst: %d wrong, %d lost of %d (want 0/0)", wrong, lost, clients*perClient)
	}
	st := c.Stats()
	// Exactly one completion per offered request: first-response-wins must
	// never double-count a request whose two legs both ran.
	if st.Interactive.Completed != uint64(clients*perClient) {
		t.Fatalf("fleet completed %d of %d offered", st.Interactive.Completed, clients*perClient)
	}
	injected := fault.Injected("cluster.node.serve.0")
	if injected == 0 {
		t.Fatal("the slow-node program never fired")
	}
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges = %d, wins = %d — a 3s stall against a 2s threshold must hedge and win", st.Hedges, st.HedgeWins)
	}
	if st.RetryDenied != 0 {
		t.Fatalf("retry budget denied %d hedges despite a 1000-token floor", st.RetryDenied)
	}
	// Reconcile the counters: every client that was hedged saw exactly one
	// hedge leg, so the fleet counter must equal the client census.
	if hedged != int(st.Hedges) {
		t.Fatalf("clients saw %d hedged responses, fleet launched %d hedge legs", hedged, st.Hedges)
	}
	// Reconcile against the stall census: a 3s stall is the only way a leg
	// outlives the 2s hedge threshold, so every hedge traces to an injected
	// stall (hedges ≤ injected); and since only a request's primary or its
	// single hedge leg can stall, injected ≤ 2×hedges.
	if int(st.Hedges) > injected || injected > 2*int(st.Hedges) {
		t.Fatalf("hedges = %d vs %d injected stalls — outside the reconcilable band", st.Hedges, injected)
	}
	if st.HedgeWins > st.Hedges {
		t.Fatalf("hedge wins %d exceed hedges %d", st.HedgeWins, st.Hedges)
	}
}
