package core

import (
	"fmt"

	"seneca/internal/ctorg"
	"seneca/internal/metrics"
	"seneca/internal/tensor"
	"seneca/internal/unet"
	"seneca/internal/xmodel"
)

// EvaluateFP32 runs the FP32 model over a dataset and accumulates the pixel
// confusion statistics.
func EvaluateFP32(m *unet.Model, ds *ctorg.Dataset, batchSize int) *metrics.Confusion {
	conf := metrics.NewConfusion(ctorg.NumClasses)
	if batchSize < 1 {
		batchSize = 4
	}
	for at := 0; at < ds.Len(); at += batchSize {
		hi := at + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, 0, hi-at)
		for i := at; i < hi; i++ {
			idx = append(idx, i)
		}
		x, labels := ds.Batch(idx)
		pred := m.Predict(x)
		conf.Add(pred, labels)
	}
	return conf
}

// EvaluateINT8 runs the compiled program (bit-accurate INT8) over a dataset.
func EvaluateINT8(p *xmodel.Program, ds *ctorg.Dataset) (*metrics.Confusion, error) {
	conf := metrics.NewConfusion(ctorg.NumClasses)
	img := tensor.New(1, ds.Size, ds.Size)
	for _, s := range ds.Slices {
		copy(img.Data, s.Image)
		pred, err := p.Run(img)
		if err != nil {
			return nil, fmt.Errorf("core: INT8 evaluation: %w", err)
		}
		conf.Add(pred, s.Labels)
	}
	return conf, nil
}

// PerPatientOrganDice computes, for every organ class, the distribution of
// per-patient Dice scores under the compiled INT8 program — the data behind
// the Figure 6 boxplots.
func PerPatientOrganDice(p *xmodel.Program, ds *ctorg.Dataset) (map[uint8][]float64, error) {
	perPatient := make(map[int]*metrics.Confusion)
	img := tensor.New(1, ds.Size, ds.Size)
	for _, s := range ds.Slices {
		copy(img.Data, s.Image)
		pred, err := p.Run(img)
		if err != nil {
			return nil, err
		}
		conf := perPatient[s.Patient]
		if conf == nil {
			conf = metrics.NewConfusion(ctorg.NumClasses)
			perPatient[s.Patient] = conf
		}
		conf.Add(pred, s.Labels)
	}
	out := make(map[uint8][]float64)
	for _, pid := range sortedPatients(perPatient) {
		conf := perPatient[pid]
		for cls := uint8(1); cls < ctorg.NumClasses; cls++ {
			// Only count patients in whom the organ actually appears.
			if conf.TP[cls]+conf.FN[cls] == 0 {
				continue
			}
			out[cls] = append(out[cls], conf.Dice(int(cls)))
		}
	}
	return out, nil
}

func sortedPatients(m map[int]*metrics.Confusion) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
