package core

import (
	"fmt"

	"seneca/internal/ctorg"
	"seneca/internal/graph"
	"seneca/internal/quant"
	"seneca/internal/unet"
	"seneca/internal/xmodel"
)

// CalibrationMode selects how the PTQ calibration set is sampled.
type CalibrationMode string

// Calibration modes (paper Table III).
const (
	// CalibRandom samples slices uniformly; the calibration distribution
	// mirrors the dataset's (Table III "Random Sampling").
	CalibRandom CalibrationMode = "random"
	// CalibManual levels organ frequencies toward the paper's curated
	// distribution (Table III "Manual Sampling") so small organs survive
	// quantization.
	CalibManual CalibrationMode = "manual"
)

// QuantMode selects the quantization procedure (Section III-D).
type QuantMode string

// Quantization modes.
const (
	QuantPTQ QuantMode = "ptq"
	QuantFFQ QuantMode = "ffq"
	QuantQAT QuantMode = "qat" // fake-quant fine-tuning during training
)

// PipelineConfig assembles the full workflow configuration.
type PipelineConfig struct {
	// Model selects the Table II configuration.
	Model unet.Config
	// Train controls Figure 1-C.
	Train TrainConfig
	// CalibSize is the calibration-set size (paper: 500 slices).
	CalibSize int
	// CalibMode selects random or manual sampling.
	CalibMode CalibrationMode
	// QuantMode selects PTQ, FFQ or QAT.
	QuantMode QuantMode
	// Seed drives calibration sampling.
	Seed int64
}

// DefaultPipelineConfig returns the paper's deployed configuration for the
// given model at the given training scale.
func DefaultPipelineConfig(model unet.Config) PipelineConfig {
	return PipelineConfig{
		Model:     model,
		Train:     DefaultTrainConfig(),
		CalibSize: 500,
		CalibMode: CalibManual,
		QuantMode: QuantPTQ,
		Seed:      1,
	}
}

// Artifacts collects every product of the workflow: the trained FP32 model,
// its exported inference graph, the quantized graph and the compiled DPU
// program.
type Artifacts struct {
	Model   *unet.Model
	Graph   *graph.Graph
	QGraph  *quant.QGraph
	Program *xmodel.Program
	Report  TrainReport
	// CalibIndices are the training-set slice indices used for calibration.
	CalibIndices []int
}

// RunPipeline executes the complete SENECA workflow (Figure 1 A–E) over an
// already-built dataset: train FP32, build the calibration set, quantize,
// compile. Deployment and evaluation are separate steps (internal/vart and
// Evaluate*).
func RunPipeline(train *ctorg.Dataset, cfg PipelineConfig) (*Artifacts, error) {
	if cfg.QuantMode == QuantQAT {
		cfg.Train.QAT = true
	}
	model, report, err := Train(cfg.Model, train, cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("core: training: %w", err)
	}
	return Deploy(model, train, cfg, report)
}

// Deploy runs the post-training half of the workflow (Figure 1 D–E) on an
// already-trained model: calibration sampling, quantization, compilation.
func Deploy(model *unet.Model, train *ctorg.Dataset, cfg PipelineConfig, report TrainReport) (*Artifacts, error) {
	g := model.Export(train.Size, train.Size)

	n := cfg.CalibSize
	if n <= 0 {
		n = 500
	}
	var calibIdx []int
	switch cfg.CalibMode {
	case CalibManual, "":
		calibIdx = ctorg.ManualCalibration(train, n, ctorg.TableIIIManualTargets, cfg.Seed)
	case CalibRandom:
		calibIdx = ctorg.RandomCalibration(train, n, cfg.Seed)
	default:
		return nil, fmt.Errorf("core: unknown calibration mode %q", cfg.CalibMode)
	}
	calibImgs := train.Images(calibIdx)

	var q *quant.QGraph
	var err error
	switch cfg.QuantMode {
	case QuantPTQ, QuantQAT, "":
		q, err = quant.PTQ(g, calibImgs, quant.Options{})
	case QuantFFQ:
		q, err = quant.FFQ(g, calibImgs, quant.Options{}, 2)
	default:
		return nil, fmt.Errorf("core: unknown quantization mode %q", cfg.QuantMode)
	}
	if err != nil {
		return nil, fmt.Errorf("core: quantization: %w", err)
	}

	prog, err := xmodel.Compile(q, cfg.Model.Name)
	if err != nil {
		return nil, fmt.Errorf("core: compilation: %w", err)
	}
	return &Artifacts{
		Model:        model,
		Graph:        g,
		QGraph:       q,
		Program:      prog,
		Report:       report,
		CalibIndices: calibIdx,
	}, nil
}
