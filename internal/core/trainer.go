// Package core orchestrates the end-to-end SENECA workflow of paper
// Figure 1: data preparation (A, via internal/ctorg), FP32 U-Net definition
// (B) and training (C) with the weighted Focal Tversky loss, INT8
// quantization with a curated calibration set (D), and compilation plus
// deployment onto the simulated ZCU104 DPU (E). It also provides the
// evaluation routines behind the paper's accuracy tables and figures.
package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"seneca/internal/ctorg"
	"seneca/internal/nn"
	"seneca/internal/obs"
	"seneca/internal/quant"
	"seneca/internal/unet"
)

// TrainConfig controls FP32 model training (Figure 1-C).
type TrainConfig struct {
	// Epochs over the training set.
	Epochs int
	// BatchSize in slices.
	BatchSize int
	// LearningRate for Adam.
	LearningRate float32
	// Loss selects the training loss: "focal-tversky" (the paper's choice,
	// Section III-C), "dice" or "cross-entropy" (ablations).
	Loss string
	// BGDamp damps the background class weight in the inverse-frequency
	// weighting (background is huge but easy).
	BGDamp float64
	// WeightPow tempers the inverse-frequency weights: w ∝ freq^−WeightPow.
	// 1 is the raw inverse; 0.5 (the default) keeps small organs favored
	// without starving the large ones.
	WeightPow float64
	// ClipNorm is the global gradient-norm clip (0 disables).
	ClipNorm float64
	// OversampleRare repeats slices containing the rarest organs (bladder,
	// kidneys) this many times per epoch, compensating for how few slices
	// they appear in. 0 or 1 disables. This is a sampling-level counterpart
	// of the paper's class weighting — small organs otherwise appear in so
	// few slices that short training schedules never fit them.
	OversampleRare int
	// Augment enables training-time augmentation (horizontal flips,
	// intensity jitter, noise) — standard medical-segmentation practice
	// that the small phantom cohort benefits from.
	Augment bool
	// QAT enables quantization-aware training: weights are fake-quantized
	// in every forward pass with a straight-through estimator.
	QAT bool
	// Seed drives batch shuffling.
	Seed int64
	// Log receives progress lines; nil silences them.
	Log io.Writer
	// Metrics is the registry the loop reports per-epoch loss, step time
	// and images/sec into. nil uses obs.Default, so a pipeline run is
	// observable from one scrape without any wiring.
	Metrics *obs.Registry
}

// DefaultTrainConfig returns the settings used by the experiment harnesses'
// fast mode.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:         8,
		BatchSize:      4,
		LearningRate:   2e-3,
		Loss:           "focal-tversky",
		BGDamp:         0.25,
		WeightPow:      0.5,
		OversampleRare: 3,
		ClipNorm:       5,
		Seed:           1,
	}
}

// ErrDiverged is the sentinel every *DivergenceError unwraps to, so callers
// can errors.Is(err, ErrDiverged) without caring where training blew up.
var ErrDiverged = errors.New("core: training diverged")

// DivergenceError reports a NaN or infinite training loss — the run is
// unrecoverable (every parameter update from here on is poison), so Train
// stops at the offending step instead of burning the remaining epochs. The
// usual cause is a too-large learning rate.
type DivergenceError struct {
	// Epoch and Step locate the poisoned update (both 1-based).
	Epoch int
	Step  int
	// Loss is the offending value (NaN, +Inf or -Inf).
	Loss float64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("core: training diverged at epoch %d step %d: loss is %v (reduce the learning rate?)", e.Epoch, e.Step, e.Loss)
}

// Unwrap makes errors.Is(err, ErrDiverged) match.
func (e *DivergenceError) Unwrap() error { return ErrDiverged }

// TrainReport summarizes a training run.
type TrainReport struct {
	EpochLoss []float64
	// Weights are the per-class loss weights derived from the training-set
	// organ frequencies (Section III-C).
	Weights []float32
}

// buildLoss constructs the configured loss over the dataset's class
// distribution.
func buildLoss(cfg TrainConfig, ds *ctorg.Dataset) (nn.Loss, []float32, error) {
	freq := ds.ClassPixelFractions()
	pow := cfg.WeightPow
	if pow == 0 {
		pow = 0.5
	}
	weights := nn.InverseFrequencyWeightsPow(freq, cfg.BGDamp, pow)
	switch cfg.Loss {
	case "", "focal-tversky":
		return nn.NewFocalTversky(weights), weights, nil
	case "focal-tversky-unweighted":
		uw := make([]float32, len(freq))
		for i := range uw {
			uw[i] = 1
		}
		return nn.NewFocalTversky(uw), uw, nil
	case "dice":
		return nn.NewDiceLoss(len(freq)), weights, nil
	case "cross-entropy":
		return &nn.CrossEntropy{}, weights, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown loss %q", cfg.Loss)
	}
}

// Train fits a model configuration on the training dataset and returns the
// trained model. Training is deterministic given the config seeds; the
// metrics side channel never influences the arithmetic.
func Train(modelCfg unet.Config, train *ctorg.Dataset, cfg TrainConfig) (*unet.Model, TrainReport, error) {
	if train.Len() == 0 {
		return nil, TrainReport{}, fmt.Errorf("core: empty training set")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	defer reg.StartSpan("train").End()
	ml := obs.L("model", modelCfg.Name)
	mEpochLoss := reg.Gauge("seneca_train_epoch_loss", "Mean training loss of the last completed epoch.", ml)
	mEpochs := reg.Counter("seneca_train_epochs_total", "Completed training epochs.", ml)
	mSteps := reg.Counter("seneca_train_steps_total", "Completed optimizer steps.", ml)
	mImages := reg.Counter("seneca_train_images_total", "Training images consumed (counting oversampled repeats).", ml)
	mIPS := reg.Gauge("seneca_train_images_per_second", "Training throughput of the last completed epoch.", ml)
	mStep := reg.Histogram("seneca_train_step_duration_seconds",
		"Duration of one forward+backward+update step.", obs.StageBuckets, ml)
	model := unet.New(modelCfg)
	loss, weights, err := buildLoss(cfg, train)
	if err != nil {
		return nil, TrainReport{}, err
	}
	opt := nn.NewAdam(cfg.LearningRate)
	rng := rand.New(rand.NewSource(cfg.Seed))
	report := TrainReport{Weights: weights}

	var qat *quant.QATProjector
	if cfg.QAT {
		qat = quant.NewQATProjector(model.Params())
	}

	var aug *ctorg.Augmenter
	if cfg.Augment {
		aug = ctorg.NewAugmenter(cfg.Seed + 1)
	}
	indices := trainingIndices(train, cfg.OversampleRare)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(indices), func(i, j int) { indices[i], indices[j] = indices[j], indices[i] })
		var epochLoss float64
		batches := 0
		epochStart := time.Now()
		for at := 0; at < len(indices); at += cfg.BatchSize {
			hi := at + cfg.BatchSize
			if hi > len(indices) {
				hi = len(indices)
			}
			stepStart := time.Now()
			x, labels := train.Batch(indices[at:hi])
			if aug != nil {
				hw := train.Size * train.Size
				for bi := 0; bi < hi-at; bi++ {
					img, lab := aug.Apply(x.Data[bi*hw:(bi+1)*hw], labels[bi*hw:(bi+1)*hw], train.Size)
					copy(x.Data[bi*hw:(bi+1)*hw], img)
					copy(labels[bi*hw:(bi+1)*hw], lab)
				}
			}
			if qat != nil {
				qat.Project()
			}
			probs := model.Forward(x, true)
			l := loss.Forward(probs, labels)
			if math.IsNaN(l) || math.IsInf(l, 0) {
				// Stop before the update: the report keeps the completed
				// epochs so the caller can see the loss trajectory that led
				// into the divergence.
				return nil, report, &DivergenceError{Epoch: epoch + 1, Step: batches + 1, Loss: l}
			}
			grad := loss.Backward()
			model.Backward(grad)
			if qat != nil {
				qat.Restore()
			}
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(model.Params(), cfg.ClipNorm)
			}
			opt.Step(model.Params())
			epochLoss += l
			batches++
			mStep.Observe(time.Since(stepStart).Seconds())
			mSteps.Inc()
			mImages.Add(uint64(hi - at))
		}
		epochLoss /= float64(batches)
		report.EpochLoss = append(report.EpochLoss, epochLoss)
		mEpochLoss.Set(epochLoss)
		mEpochs.Inc()
		if sec := time.Since(epochStart).Seconds(); sec > 0 {
			mIPS.Set(float64(len(indices)) / sec)
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %d/%d: loss %.4f\n", epoch+1, cfg.Epochs, epochLoss)
		}
	}
	return model, report, nil
}

// trainingIndices returns one epoch's slice index multiset: every slice
// once, plus extra copies of slices containing the two rarest organ classes
// (bladder and kidneys in CT-ORG).
func trainingIndices(train *ctorg.Dataset, oversample int) []int {
	indices := make([]int, 0, train.Len())
	for i := range train.Slices {
		indices = append(indices, i)
	}
	if oversample <= 1 {
		return indices
	}
	for i, s := range train.Slices {
		if s.ClassPixels[2] > 0 || s.ClassPixels[4] > 0 { // bladder, kidneys
			for k := 1; k < oversample; k++ {
				indices = append(indices, i)
			}
		}
	}
	return indices
}
