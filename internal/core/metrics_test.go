package core

import (
	"strings"
	"testing"

	"seneca/internal/obs"
)

// TestTrainEmitsMetrics trains two epochs into a private registry and
// checks the per-epoch loss/step-time/images-per-second series the
// observability layer promises are all present and sane.
func TestTrainEmitsMetrics(t *testing.T) {
	if raceEnabled {
		t.Skip("training is too slow under the race detector")
	}
	train, _ := fastDataset(t)
	reg := obs.NewRegistry()
	cfg := fastTrainConfig()
	cfg.Epochs = 2
	cfg.Metrics = reg
	if _, _, err := Train(fastModelConfig(), train, cfg); err != nil {
		t.Fatal(err)
	}

	ml := obs.L("model", "fast-1M")
	if got := reg.Counter("seneca_train_epochs_total", "", ml).Value(); got != 2 {
		t.Fatalf("epochs counter = %d, want 2", got)
	}
	steps := reg.Counter("seneca_train_steps_total", "", ml).Value()
	if steps == 0 {
		t.Fatal("steps counter empty")
	}
	if imgs := reg.Counter("seneca_train_images_total", "", ml).Value(); imgs < steps {
		t.Fatalf("images %d < steps %d", imgs, steps)
	}
	loss := reg.Gauge("seneca_train_epoch_loss", "", ml).Value()
	if loss <= 0 || loss > 100 {
		t.Fatalf("implausible epoch loss %v", loss)
	}
	if ips := reg.Gauge("seneca_train_images_per_second", "", ml).Value(); ips <= 0 {
		t.Fatalf("images/sec = %v, want > 0", ips)
	}
	h := reg.Histogram("seneca_train_step_duration_seconds", "", obs.StageBuckets, ml)
	if h.Count() != steps {
		t.Fatalf("step histogram count %d != steps %d", h.Count(), steps)
	}

	out := reg.Expose()
	for _, want := range []string{
		`seneca_train_epoch_loss{model="fast-1M"}`,
		`seneca_stage_runs_total{stage="train"} 1`,
		`seneca_train_step_duration_seconds_count{model="fast-1M"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
