//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The
// training-bound integration tests skip under -race: they are pure
// CPU-bound math, roughly 10× slower with the detector on, and blow the
// test timeout without exercising any interesting concurrency.
const raceEnabled = true
