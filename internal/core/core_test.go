package core

import (
	"errors"
	"math"
	"testing"

	"seneca/internal/ctorg"
	"seneca/internal/phantom"
	"seneca/internal/unet"
)

// fastDataset builds a small phantom dataset shared by the integration
// tests (cached across tests within the run).
var cachedTrain, cachedTest *ctorg.Dataset

func fastDataset(t *testing.T) (*ctorg.Dataset, *ctorg.Dataset) {
	t.Helper()
	if cachedTrain != nil {
		return cachedTrain, cachedTest
	}
	opt := phantom.Options{Size: 96, Slices: 14, Seed: 3, NoiseSigma: 10}
	vols := phantom.GenerateDataset(8, opt)
	ds := ctorg.Build(vols, 48)
	train, _, test := ds.Split(0.75, 0, 9)
	cachedTrain, cachedTest = train, test
	return train, test
}

func fastModelConfig() unet.Config {
	return unet.Config{Name: "fast-1M", Depth: 2, BaseFilters: 8, InChannels: 1, NumClasses: 6, DropoutRate: 0.05, Seed: 4}
}

func fastTrainConfig() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	cfg.BatchSize = 6
	return cfg
}

// cachedArtifacts trains the shared pipeline once for all tests that only
// need a trained+compiled model.
var cachedArt *Artifacts

func fastArtifacts(t *testing.T) *Artifacts {
	t.Helper()
	if raceEnabled {
		t.Skip("training pipeline is too slow under the race detector")
	}
	if cachedArt != nil {
		return cachedArt
	}
	train, _ := fastDataset(t)
	cfg := DefaultPipelineConfig(fastModelConfig())
	cfg.Train = fastTrainConfig()
	cfg.CalibSize = 40
	art, err := RunPipeline(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedArt = art
	return art
}

func TestTrainRejectsEmptyDataset(t *testing.T) {
	if _, _, err := Train(fastModelConfig(), &ctorg.Dataset{Size: 48}, fastTrainConfig()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestTrainUnknownLoss(t *testing.T) {
	train, _ := fastDataset(t)
	cfg := fastTrainConfig()
	cfg.Loss = "hinge"
	if _, _, err := Train(fastModelConfig(), train, cfg); err == nil {
		t.Fatal("unknown loss accepted")
	}
}

// TestEndToEndPipeline is the central integration test: train a small
// U-Net on the phantom, quantize with the manual calibration set, compile,
// and verify (a) the FP32 model actually learned, (b) the INT8 program
// tracks the FP32 accuracy closely — the paper's key accuracy claim
// ("PTQ ... with no global performance losses", Section III-D).
func TestEndToEndPipeline(t *testing.T) {
	_, test := fastDataset(t)
	art := fastArtifacts(t)
	if len(art.Report.EpochLoss) != fastTrainConfig().Epochs {
		t.Fatalf("epoch losses %v", art.Report.EpochLoss)
	}
	first, last := art.Report.EpochLoss[0], art.Report.EpochLoss[len(art.Report.EpochLoss)-1]
	if !(last < first) {
		t.Errorf("training did not reduce loss: %v → %v", first, last)
	}

	fp32 := EvaluateFP32(art.Model, test, 6)
	int8c, err := EvaluateINT8(art.Program, test)
	if err != nil {
		t.Fatal(err)
	}
	gFP := fp32.GlobalDice()
	gI8 := int8c.GlobalDice()
	t.Logf("global DSC: FP32 %.4f, INT8 %.4f", gFP, gI8)
	if gFP < 0.60 {
		t.Errorf("FP32 model failed to learn: global DSC %.3f", gFP)
	}
	if math.Abs(gFP-gI8) > 0.05 {
		t.Errorf("INT8/FP32 global DSC gap %.4f too large (paper: negligible)", math.Abs(gFP-gI8))
	}

	// Big, high-contrast lungs must beat the small low-contrast bladder
	// (Figure 6's difficulty ordering).
	lungs := int8c.Dice(int(phantom.ClassLungs))
	bladder := int8c.Dice(int(phantom.ClassBladder))
	if lungs <= bladder {
		t.Errorf("difficulty ordering violated: lungs %.3f ≤ bladder %.3f", lungs, bladder)
	}

	// Specificity must be high (paper: global TNR 99.75% on the fully
	// trained model; this fast-mode model trains for a fraction of that).
	if spec := int8c.GlobalSpecificity(); spec < 0.95 {
		t.Errorf("global specificity %.4f, want ≥0.95", spec)
	}
}

func TestPerPatientOrganDice(t *testing.T) {
	_, test := fastDataset(t)
	art := fastArtifacts(t)
	dist, err := PerPatientOrganDice(art.Program, test)
	if err != nil {
		t.Fatal(err)
	}
	patients := len(test.Patients())
	for cls := uint8(1); cls < ctorg.NumClasses; cls++ {
		if len(dist[cls]) == 0 {
			t.Errorf("no per-patient Dice values for %s", ctorg.ClassNames[cls])
			continue
		}
		if len(dist[cls]) > patients {
			t.Errorf("%s: %d values for %d patients", ctorg.ClassNames[cls], len(dist[cls]), patients)
		}
		for _, d := range dist[cls] {
			if d < 0 || d > 1 {
				t.Errorf("%s Dice %v out of range", ctorg.ClassNames[cls], d)
			}
		}
	}
}

func TestDeployCalibrationModes(t *testing.T) {
	train, _ := fastDataset(t)
	art := fastArtifacts(t)
	model, report := art.Model, art.Report
	for _, mode := range []CalibrationMode{CalibRandom, CalibManual} {
		cfg := DefaultPipelineConfig(fastModelConfig())
		cfg.CalibSize = 30
		cfg.CalibMode = mode
		art, err := Deploy(model, train, cfg, report)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(art.CalibIndices) != 30 {
			t.Fatalf("%s: calibration size %d", mode, len(art.CalibIndices))
		}
	}
	cfg := DefaultPipelineConfig(fastModelConfig())
	cfg.CalibMode = "bogus"
	if _, err := Deploy(model, train, cfg, report); err == nil {
		t.Fatal("bogus calibration mode accepted")
	}
	cfg = DefaultPipelineConfig(fastModelConfig())
	cfg.QuantMode = "bogus"
	if _, err := Deploy(model, train, cfg, report); err == nil {
		t.Fatal("bogus quant mode accepted")
	}
}

func TestQuantModesAllRun(t *testing.T) {
	if raceEnabled {
		t.Skip("training pipeline is too slow under the race detector")
	}
	train, test := fastDataset(t)
	base := DefaultPipelineConfig(fastModelConfig())
	base.Train = fastTrainConfig()
	base.Train.Epochs = 2
	base.CalibSize = 20
	results := map[QuantMode]float64{}
	for _, mode := range []QuantMode{QuantPTQ, QuantFFQ, QuantQAT} {
		cfg := base
		cfg.QuantMode = mode
		art, err := RunPipeline(train, cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		conf, err := EvaluateINT8(art.Program, test)
		if err != nil {
			t.Fatal(err)
		}
		results[mode] = conf.GlobalDice()
	}
	t.Logf("quant mode DSC: %v", results)
	// All three modes must produce sane segmenters (the paper finds no
	// significant differences among them).
	for mode, d := range results {
		if d < 0.3 {
			t.Errorf("%s produced unusable model: DSC %.3f", mode, d)
		}
	}
}

func TestTrainDetectsDivergence(t *testing.T) {
	train, _ := fastDataset(t)
	cfg := fastTrainConfig()
	cfg.Epochs = 3
	// A float32-edge learning rate overflows the activations and the loss
	// goes NaN within the first steps; the loop must stop at the
	// poisoned step with a typed error, not return a NaN-weighted model.
	cfg.LearningRate = 1e38
	cfg.ClipNorm = 0
	model, report, err := Train(fastModelConfig(), train, cfg)
	if err == nil {
		t.Fatal("Train returned no error despite a 1e38 learning rate")
	}
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("error does not match ErrDiverged: %v", err)
	}
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("error is not a *DivergenceError: %v", err)
	}
	if de.Epoch < 1 || de.Step < 1 {
		t.Errorf("divergence location not recorded: epoch %d step %d", de.Epoch, de.Step)
	}
	if !math.IsNaN(de.Loss) && !math.IsInf(de.Loss, 0) {
		t.Errorf("recorded loss %v is finite", de.Loss)
	}
	if model != nil {
		t.Error("diverged training still returned a model")
	}
	// The report keeps the epochs completed before the blow-up (possibly
	// none), never a poisoned value.
	for i, l := range report.EpochLoss {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Errorf("report.EpochLoss[%d] = %v", i, l)
		}
	}
}
