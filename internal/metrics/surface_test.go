package metrics

import (
	"math"
	"testing"
)

// square draws a filled square of the class on an h×w mask.
func square(h, w, y0, x0, side int, class uint8) []uint8 {
	m := make([]uint8, h*w)
	for y := y0; y < y0+side; y++ {
		for x := x0; x < x0+side; x++ {
			m[y*w+x] = class
		}
	}
	return m
}

func TestSurfaceDistancesIdenticalMasks(t *testing.T) {
	m := square(16, 16, 4, 4, 6, 1)
	hd, assd := SurfaceDistances(m, m, 16, 16, 1)
	if hd != 0 || assd != 0 {
		t.Fatalf("identical masks: HD95 %v, ASSD %v", hd, assd)
	}
}

func TestSurfaceDistancesShiftedSquare(t *testing.T) {
	a := square(32, 32, 8, 8, 8, 1)
	b := square(32, 32, 8, 11, 8, 1) // shifted 3 px right
	hd, assd := SurfaceDistances(a, b, 32, 32, 1)
	if hd < 2 || hd > 4 {
		t.Fatalf("HD95 %v for a 3-pixel shift", hd)
	}
	if assd <= 0 || assd > 3 {
		t.Fatalf("ASSD %v for a 3-pixel shift", assd)
	}
}

func TestSurfaceDistancesMissedOrgan(t *testing.T) {
	empty := make([]uint8, 16*16)
	gt := square(16, 16, 4, 4, 4, 2)
	hd, assd := SurfaceDistances(empty, gt, 16, 16, 2)
	if !math.IsInf(hd, 1) || !math.IsInf(assd, 1) {
		t.Fatalf("missed organ must be infinite: %v, %v", hd, assd)
	}
	// Both empty → zero.
	hd, assd = SurfaceDistances(empty, empty, 16, 16, 2)
	if hd != 0 || assd != 0 {
		t.Fatalf("both-empty case: %v, %v", hd, assd)
	}
}

func TestSurfaceDistancesSymmetric(t *testing.T) {
	a := square(32, 32, 5, 5, 10, 1)
	b := square(32, 32, 9, 9, 7, 1)
	hdAB, assdAB := SurfaceDistances(a, b, 32, 32, 1)
	hdBA, assdBA := SurfaceDistances(b, a, 32, 32, 1)
	if math.Abs(hdAB-hdBA) > 1e-12 || math.Abs(assdAB-assdBA) > 1e-12 {
		t.Fatalf("surface distances not symmetric: (%v,%v) vs (%v,%v)", hdAB, assdAB, hdBA, assdBA)
	}
}

func TestBoundaryPixelsHollow(t *testing.T) {
	// A 4×4 square has 12 boundary pixels (interior 2×2 excluded).
	m := square(16, 16, 4, 4, 4, 1)
	b := boundaryPixels(m, 16, 16, 1)
	if len(b) != 12 {
		t.Fatalf("%d boundary pixels, want 12", len(b))
	}
}

func TestBoundaryAtImageEdge(t *testing.T) {
	// A class touching the image border counts its border pixels as
	// boundary even without a neighboring other class.
	m := make([]uint8, 4*4)
	for i := range m {
		m[i] = 1
	}
	b := boundaryPixels(m, 4, 4, 1)
	if len(b) != 12 { // all but the 2×2 interior
		t.Fatalf("%d boundary pixels, want 12", len(b))
	}
}
