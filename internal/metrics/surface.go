package metrics

import (
	"math"
	"sort"
)

// Surface-distance metrics complement the overlap metrics of the paper
// (Dice, TPR, TNR) with boundary-accuracy measures standard in medical
// segmentation challenges: the 95th-percentile Hausdorff distance (HD95)
// and the average symmetric surface distance (ASSD). The paper's
// observation that SENECA is "more conservative when detecting the organs'
// edges" (Section IV-D) is directly quantifiable with these.

// point is a 2D pixel coordinate.
type point struct{ y, x int }

// boundaryPixels extracts the class's boundary pixels from a row-major h×w
// label map: labeled pixels with at least one 4-neighbor of another class
// (or on the image border).
func boundaryPixels(mask []uint8, h, w int, class uint8) []point {
	var out []point
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if mask[y*w+x] != class {
				continue
			}
			if y == 0 || y == h-1 || x == 0 || x == w-1 ||
				mask[(y-1)*w+x] != class || mask[(y+1)*w+x] != class ||
				mask[y*w+x-1] != class || mask[y*w+x+1] != class {
				out = append(out, point{y, x})
			}
		}
	}
	return out
}

// directedDistances returns, for every point of a, the Euclidean distance
// to the nearest point of b.
func directedDistances(a, b []point) []float64 {
	out := make([]float64, len(a))
	for i, p := range a {
		best := math.Inf(1)
		for _, q := range b {
			dy := float64(p.y - q.y)
			dx := float64(p.x - q.x)
			d := dy*dy + dx*dx
			if d < best {
				best = d
			}
		}
		out[i] = math.Sqrt(best)
	}
	return out
}

// SurfaceDistances computes boundary-distance statistics between a
// predicted and a ground-truth mask for one class. Returns (HD95, ASSD) in
// pixels. Conventions for degenerate cases: both surfaces empty → (0, 0);
// exactly one empty → (+Inf, +Inf), the class was entirely missed or
// entirely hallucinated.
func SurfaceDistances(pred, gt []uint8, h, w int, class uint8) (hd95, assd float64) {
	pb := boundaryPixels(pred, h, w, class)
	gb := boundaryPixels(gt, h, w, class)
	switch {
	case len(pb) == 0 && len(gb) == 0:
		return 0, 0
	case len(pb) == 0 || len(gb) == 0:
		return math.Inf(1), math.Inf(1)
	}
	d1 := directedDistances(pb, gb)
	d2 := directedDistances(gb, pb)
	all := append(append([]float64(nil), d1...), d2...)
	sort.Float64s(all)
	idx := int(math.Ceil(0.95*float64(len(all)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(all) {
		idx = len(all) - 1
	}
	hd95 = all[idx]
	var sum float64
	for _, d := range all {
		sum += d
	}
	assd = sum / float64(len(all))
	return hd95, assd
}
