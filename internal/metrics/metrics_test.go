package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDicePerfectAndDisjoint(t *testing.T) {
	c := NewConfusion(3)
	pred := []uint8{0, 1, 1, 2}
	c.Add(pred, pred)
	for cls := 0; cls < 3; cls++ {
		if d := c.Dice(cls); d != 1 {
			t.Fatalf("perfect Dice[%d] = %v", cls, d)
		}
	}
	c2 := NewConfusion(2)
	c2.Add([]uint8{1, 1}, []uint8{0, 0})
	if d := c2.Dice(1); d != 0 {
		t.Fatalf("disjoint Dice = %v", d)
	}
}

func TestDiceHandComputed(t *testing.T) {
	// pred: [1 1 0 0], gt: [1 0 1 0] for class 1: TP=1, FP=1, FN=1 →
	// Dice = 2/(2+1+1) = 0.5.
	c := NewConfusion(2)
	c.Add([]uint8{1, 1, 0, 0}, []uint8{1, 0, 1, 0})
	if d := c.Dice(1); d != 0.5 {
		t.Fatalf("Dice = %v, want 0.5", d)
	}
	if r := c.Recall(1); r != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", r)
	}
	// class 1: TN = pixels neither predicted nor labeled 1 = 1; FP = 1.
	if s := c.Specificity(1); s != 0.5 {
		t.Fatalf("Specificity = %v, want 0.5", s)
	}
}

func TestAbsentClassScoresOne(t *testing.T) {
	c := NewConfusion(4)
	c.Add([]uint8{0, 1}, []uint8{0, 1})
	if d := c.Dice(3); d != 1 {
		t.Fatalf("absent class Dice = %v", d)
	}
}

func TestDiceSymmetryProperty(t *testing.T) {
	// Dice(pred, gt) == Dice(gt, pred) for every class.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		a := make([]uint8, n)
		b := make([]uint8, n)
		for i := range a {
			a[i] = uint8(rng.Intn(3))
			b[i] = uint8(rng.Intn(3))
		}
		c1 := NewConfusion(3)
		c1.Add(a, b)
		c2 := NewConfusion(3)
		c2.Add(b, a)
		for cls := 0; cls < 3; cls++ {
			if math.Abs(c1.Dice(cls)-c2.Dice(cls)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiceBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		a := make([]uint8, n)
		b := make([]uint8, n)
		for i := range a {
			a[i] = uint8(rng.Intn(4))
			b[i] = uint8(rng.Intn(4))
		}
		c := NewConfusion(4)
		c.Add(a, b)
		for cls := 0; cls < 4; cls++ {
			for _, v := range []float64{c.Dice(cls), c.Recall(cls), c.Specificity(cls), c.GlobalDice()} {
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionCountsConserve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1000
	pred := make([]uint8, n)
	gt := make([]uint8, n)
	for i := range pred {
		pred[i] = uint8(rng.Intn(5))
		gt[i] = uint8(rng.Intn(5))
	}
	c := NewConfusion(5)
	c.Add(pred, gt)
	for cls := 0; cls < 5; cls++ {
		if c.TP[cls]+c.FP[cls]+c.FN[cls]+c.TN[cls] != int64(n) {
			t.Fatalf("class %d counts do not sum to n", cls)
		}
	}
	// Σ TP + Σ FP = n (every pixel predicted exactly one class).
	var tp, fp int64
	for cls := 0; cls < 5; cls++ {
		tp += c.TP[cls]
		fp += c.FP[cls]
	}
	if tp+fp != int64(n) {
		t.Fatalf("ΣTP+ΣFP = %d, want %d", tp+fp, n)
	}
}

// TestIncrementalAddMatchesOneShot is the regression test for the TN
// accumulation bug: Add derived TN from the *cumulative* TP/FP/FN counters,
// so from the second call on every earlier pair's positives were subtracted
// from the current pair's pixel total — TN drifted low and could go
// negative. Adding pairs one at a time must equal adding their
// concatenation in a single call.
func TestIncrementalAddMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const classes, pairs, n = 5, 7, 400
	inc := NewConfusion(classes)
	oneShot := NewConfusion(classes)
	var allPred, allGT []uint8
	for p := 0; p < pairs; p++ {
		pred := make([]uint8, n)
		gt := make([]uint8, n)
		for i := range pred {
			pred[i] = uint8(rng.Intn(classes))
			gt[i] = uint8(rng.Intn(classes))
		}
		inc.Add(pred, gt)
		allPred = append(allPred, pred...)
		allGT = append(allGT, gt...)
	}
	oneShot.Add(allPred, allGT)
	for cls := 0; cls < classes; cls++ {
		if inc.TN[cls] < 0 {
			t.Fatalf("class %d: negative TN %d after incremental adds", cls, inc.TN[cls])
		}
		if inc.TP[cls] != oneShot.TP[cls] || inc.FP[cls] != oneShot.FP[cls] ||
			inc.FN[cls] != oneShot.FN[cls] || inc.TN[cls] != oneShot.TN[cls] {
			t.Fatalf("class %d: incremental (TP %d FP %d FN %d TN %d) != one-shot (TP %d FP %d FN %d TN %d)",
				cls, inc.TP[cls], inc.FP[cls], inc.FN[cls], inc.TN[cls],
				oneShot.TP[cls], oneShot.FP[cls], oneShot.FN[cls], oneShot.TN[cls])
		}
		if sum := inc.TP[cls] + inc.FP[cls] + inc.FN[cls] + inc.TN[cls]; sum != pairs*n {
			t.Fatalf("class %d: counts sum to %d, want %d", cls, sum, pairs*n)
		}
	}
}

func TestMerge(t *testing.T) {
	a := NewConfusion(2)
	a.Add([]uint8{1, 0}, []uint8{1, 1})
	b := NewConfusion(2)
	b.Add([]uint8{1, 1}, []uint8{1, 1})
	merged := NewConfusion(2)
	merged.Add([]uint8{1, 0}, []uint8{1, 1})
	merged.Add([]uint8{1, 1}, []uint8{1, 1})
	a.Merge(b)
	for cls := 0; cls < 2; cls++ {
		if a.TP[cls] != merged.TP[cls] || a.FN[cls] != merged.FN[cls] {
			t.Fatal("Merge != sequential Add")
		}
	}
}

func TestGlobalDiceWeighting(t *testing.T) {
	// Class 1 has 90 gt pixels at Dice 1, class 2 has 10 gt pixels at
	// Dice 0 → global = 0.9.
	c := NewConfusion(3)
	gt := make([]uint8, 100)
	pred := make([]uint8, 100)
	for i := 0; i < 90; i++ {
		gt[i] = 1
		pred[i] = 1
	}
	for i := 90; i < 100; i++ {
		gt[i] = 2
		pred[i] = 0
	}
	c.Add(pred, gt)
	if g := c.GlobalDice(); math.Abs(g-0.9) > 1e-9 {
		t.Fatalf("GlobalDice = %v, want 0.9", g)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || math.Abs(s.Std-2) > 1e-12 || s.N != 8 {
		t.Fatalf("Summarize = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	if got := s.String(); got != "5.00±2.00" {
		t.Fatalf("String = %q", got)
	}
}

func TestBoxplot(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := Boxplot(vals)
	if b.Min != 1 || b.Max != 100 {
		t.Fatalf("min/max %v/%v", b.Min, b.Max)
	}
	if b.Median != 5.5 {
		t.Fatalf("median %v", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers %v", b.Outliers)
	}
	if b.WhiskerHigh >= 100 || b.WhiskerHigh < 9 {
		t.Fatalf("upper whisker %v", b.WhiskerHigh)
	}
	if b.Q1 >= b.Median || b.Median >= b.Q3 {
		t.Fatalf("quartiles out of order: %+v", b)
	}
}

func TestBoxplotOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		b := Boxplot(vals)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.WhiskerLow <= b.WhiskerHigh || len(vals) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
