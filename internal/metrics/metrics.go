// Package metrics implements the evaluation metrics of paper Section IV-A2:
// the Dice Similarity Coefficient (Eq. 4), Recall/TPR (Eq. 5) and
// Specificity/TNR (Eq. 6), their per-organ and frequency-weighted global
// aggregations, run statistics (µ ± σ as reported in Tables IV–V), and the
// boxplot statistics of Figure 6.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Confusion accumulates per-class pixel confusion counts over any number of
// prediction/ground-truth pairs.
type Confusion struct {
	NumClasses     int
	TP, FP, FN, TN []int64
}

// NewConfusion allocates a confusion accumulator for n classes.
func NewConfusion(n int) *Confusion {
	return &Confusion{
		NumClasses: n,
		TP:         make([]int64, n),
		FP:         make([]int64, n),
		FN:         make([]int64, n),
		TN:         make([]int64, n),
	}
}

// Add accumulates one prediction/ground-truth pair of equal-length label
// maps.
func (c *Confusion) Add(pred, gt []uint8) {
	if len(pred) != len(gt) {
		panic(fmt.Sprintf("metrics: prediction length %d vs ground truth %d", len(pred), len(gt)))
	}
	n := int64(len(pred))
	// Count this pair's TP/FP/FN in one pass; TN follows from the pair's
	// own totals. The deltas must come from this call alone — deriving TN
	// from the cumulative counters counts every earlier pair's positives
	// against this pair's pixel total, understating TN more with each call
	// (and eventually driving it negative).
	dTP := make([]int64, c.NumClasses)
	dFP := make([]int64, c.NumClasses)
	dFN := make([]int64, c.NumClasses)
	for i := range pred {
		p, g := pred[i], gt[i]
		if p == g {
			dTP[p]++
		} else {
			dFP[p]++
			dFN[g]++
		}
	}
	for cls := 0; cls < c.NumClasses; cls++ {
		c.TP[cls] += dTP[cls]
		c.FP[cls] += dFP[cls]
		c.FN[cls] += dFN[cls]
		c.TN[cls] += n - dTP[cls] - dFP[cls] - dFN[cls]
	}
}

// Merge adds another confusion accumulator into this one.
func (c *Confusion) Merge(o *Confusion) {
	if c.NumClasses != o.NumClasses {
		panic("metrics: merging confusions with different class counts")
	}
	for i := 0; i < c.NumClasses; i++ {
		c.TP[i] += o.TP[i]
		c.FP[i] += o.FP[i]
		c.FN[i] += o.FN[i]
		c.TN[i] += o.TN[i]
	}
}

// Dice returns the Dice Similarity Coefficient of one class (paper Eq. 4):
// 2|P∩G| / (|P|+|G|) = 2TP/(2TP+FP+FN). Classes absent from both prediction
// and ground truth score 1 (perfect vacuous agreement).
func (c *Confusion) Dice(class int) float64 {
	den := 2*c.TP[class] + c.FP[class] + c.FN[class]
	if den == 0 {
		return 1
	}
	return float64(2*c.TP[class]) / float64(den)
}

// Recall returns the True Positive Rate of one class (paper Eq. 5):
// |P∩G|/|G| = TP/(TP+FN).
func (c *Confusion) Recall(class int) float64 {
	den := c.TP[class] + c.FN[class]
	if den == 0 {
		return 1
	}
	return float64(c.TP[class]) / float64(den)
}

// Specificity returns the True Negative Rate of one class: TN/(TN+FP).
// (Paper Eq. 6 prints the denominator as |Gᶜ∩P|, a typo for |Gᶜ|; the
// standard definition is used here.)
func (c *Confusion) Specificity(class int) float64 {
	den := c.TN[class] + c.FP[class]
	if den == 0 {
		return 1
	}
	return float64(c.TN[class]) / float64(den)
}

// GlobalDice returns the frequency-weighted mean of per-organ Dice scores —
// the paper's "global DSC", which weights each organ by its ground-truth
// pixel frequency (Section IV-C). Class 0 (background) is excluded.
func (c *Confusion) GlobalDice() float64 {
	var wsum, acc float64
	for cls := 1; cls < c.NumClasses; cls++ {
		w := float64(c.TP[cls] + c.FN[cls]) // ground-truth pixel count
		if w == 0 {
			continue
		}
		acc += w * c.Dice(cls)
		wsum += w
	}
	if wsum == 0 {
		return 1
	}
	return acc / wsum
}

// GlobalRecall returns the frequency-weighted mean per-organ recall — the
// paper's "global sensitivity" (93.06% for SENECA).
func (c *Confusion) GlobalRecall() float64 {
	var wsum, acc float64
	for cls := 1; cls < c.NumClasses; cls++ {
		w := float64(c.TP[cls] + c.FN[cls])
		if w == 0 {
			continue
		}
		acc += w * c.Recall(cls)
		wsum += w
	}
	if wsum == 0 {
		return 1
	}
	return acc / wsum
}

// GlobalSpecificity returns the frequency-weighted mean per-organ
// specificity — the paper's "global TNR" (99.75% for SENECA).
func (c *Confusion) GlobalSpecificity() float64 {
	var wsum, acc float64
	for cls := 1; cls < c.NumClasses; cls++ {
		w := float64(c.TP[cls] + c.FN[cls])
		if w == 0 {
			continue
		}
		den := c.TN[cls] + c.FP[cls]
		spec := 1.0
		if den > 0 {
			spec = float64(c.TN[cls]) / float64(den)
		}
		acc += w * spec
		wsum += w
	}
	if wsum == 0 {
		return 1
	}
	return acc / wsum
}

// Summary is a mean ± standard deviation pair, the form Tables IV and V
// report.
type Summary struct {
	Mean, Std float64
	N         int
}

// String renders "mean±std".
func (s Summary) String() string { return fmt.Sprintf("%.2f±%.2f", s.Mean, s.Std) }

// Summarize computes the sample mean and (population) standard deviation.
func Summarize(vals []float64) Summary {
	n := len(vals)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(n)
	var sq float64
	for _, v := range vals {
		d := v - mean
		sq += d * d
	}
	return Summary{Mean: mean, Std: math.Sqrt(sq / float64(n)), N: n}
}

// BoxStats holds the five-number summary plus Tukey whiskers used to draw
// the Figure 6 per-organ Dice boxplots.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLow, WhiskerHigh  float64
	Outliers                 []float64
}

// Boxplot computes boxplot statistics with 1.5·IQR Tukey whiskers.
func Boxplot(vals []float64) BoxStats {
	if len(vals) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	b := BoxStats{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}
	iqr := b.Q3 - b.Q1
	lo := b.Q1 - 1.5*iqr
	hi := b.Q3 + 1.5*iqr
	b.WhiskerLow, b.WhiskerHigh = b.Max, b.Min
	for _, v := range s {
		if v >= lo && v < b.WhiskerLow {
			b.WhiskerLow = v
		}
		if v <= hi && v > b.WhiskerHigh {
			b.WhiskerHigh = v
		}
		if v < lo || v > hi {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b
}

func quantileSorted(s []float64, q float64) float64 {
	idx := q * float64(len(s)-1)
	i := int(idx)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := idx - float64(i)
	// (1−t)·a + t·b form: the difference form a+(b−a)·t overflows when a and
	// b straddle ±MaxFloat64/2.
	return s[i]*(1-frac) + s[i+1]*frac
}
