package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	x.Set(7, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	if got := x.Data[1*12+2*4+3]; got != 7 {
		t.Fatalf("flat layout wrong: %v", got)
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share backing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with wrong element count must panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestCloneIndependent(t *testing.T) {
	x := New(4)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{10, 20, 30, 40}, 4)
	a.AddInPlace(b)
	want := []float32{11, 22, 33, 44}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, a.Data[i], want[i])
		}
	}
	a.SubInPlace(b)
	for i, w := range []float32{1, 2, 3, 4} {
		if a.Data[i] != w {
			t.Fatalf("SubInPlace[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.Scale(2)
	a.AXPY(0.5, b)
	for i, w := range []float32{7, 14, 21, 28} {
		if a.Data[i] != w {
			t.Fatalf("AXPY[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	a.MulInPlace(b)
	if a.Data[3] != 28*40 {
		t.Fatalf("MulInPlace = %v", a.Data[3])
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2}, 3)
	if got := x.Sum(); got != 0 {
		t.Fatalf("Sum = %v, want 0", got)
	}
	if got := x.Mean(); got != 0 {
		t.Fatalf("Mean = %v", got)
	}
	if got := x.MaxAbs(); got != 3 {
		t.Fatalf("MaxAbs = %v, want 3", got)
	}
	mn, mx := x.MinMax()
	if mn != -3 || mx != 2 {
		t.Fatalf("MinMax = %v,%v", mn, mx)
	}
	if got := x.L2Norm(); math.Abs(got-math.Sqrt(14)) > 1e-6 {
		t.Fatalf("L2Norm = %v", got)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(s)
		}
	}
	return c
}

func tensorsClose(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
	}
	for i := range got.Data {
		d := math.Abs(float64(got.Data[i] - want.Data[i]))
		scale := math.Max(1, math.Abs(float64(want.Data[i])))
		if d > tol*scale {
			t.Fatalf("element %d: got %v want %v (diff %v)", i, got.Data[i], want.Data[i], d)
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 32, 8}} {
		a := randomTensor(rng, dims[0], dims[1])
		b := randomTensor(rng, dims[1], dims[2])
		tensorsClose(t, MatMul(a, b), naiveMatMul(a, b), 1e-4)
	}
}

func TestMatMulATAndBT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// C = Aᵀ·B where A is k×m.
	a := randomTensor(rng, 6, 4)
	b := randomTensor(rng, 6, 5)
	c := New(4, 5)
	MatMulATInto(c, a, b)
	at := New(4, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			at.Data[j*6+i] = a.Data[i*4+j]
		}
	}
	tensorsClose(t, c, naiveMatMul(at, b), 1e-4)

	// C = A·Bᵀ where B is n×k.
	a2 := randomTensor(rng, 3, 7)
	b2 := randomTensor(rng, 5, 7)
	c2 := New(3, 5)
	MatMulBTInto(c2, a2, b2)
	bt := New(7, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			bt.Data[j*5+i] = b2.Data[i*7+j]
		}
	}
	tensorsClose(t, c2, naiveMatMul(a2, bt), 1e-4)
}

// naiveConv is the direct convolution reference used to validate the
// im2col+matmul path.
func naiveConv(x *Tensor, w *Tensor, stride, pad int) *Tensor {
	cin, h, wd := x.Shape[0], x.Shape[1], x.Shape[2]
	cout, k := w.Shape[0], w.Shape[2]
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(wd, k, stride, pad)
	out := New(cout, oh, ow)
	for oc := 0; oc < cout; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float64
				for ic := 0; ic < cin; ic++ {
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							iy := oy*stride - pad + ky
							ix := ox*stride - pad + kx
							if iy < 0 || iy >= h || ix < 0 || ix >= wd {
								continue
							}
							s += float64(x.Data[(ic*h+iy)*wd+ix]) * float64(w.Data[((oc*cin+ic)*k+ky)*k+kx])
						}
					}
				}
				out.Data[(oc*oh+oy)*ow+ox] = float32(s)
			}
		}
	}
	return out
}

func TestIm2ColMatMulEqualsDirectConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ c, h, w, cout, k, stride, pad int }{
		{1, 8, 8, 4, 3, 1, 1},
		{3, 7, 9, 2, 3, 1, 1},
		{2, 8, 8, 3, 3, 2, 1},
		{4, 6, 6, 5, 1, 1, 0},
	} {
		x := randomTensor(rng, tc.c, tc.h, tc.w)
		w := randomTensor(rng, tc.cout, tc.c, tc.k, tc.k)
		oh := ConvOutSize(tc.h, tc.k, tc.stride, tc.pad)
		ow := ConvOutSize(tc.w, tc.k, tc.stride, tc.pad)
		cols := New(tc.c*tc.k*tc.k, oh*ow)
		Im2Col(x.Data, tc.c, tc.h, tc.w, tc.k, tc.k, tc.stride, tc.stride, tc.pad, tc.pad, cols.Data, oh, ow)
		got := MatMul(w.Reshape(tc.cout, tc.c*tc.k*tc.k), cols).Reshape(tc.cout, oh, ow)
		tensorsClose(t, got, naiveConv(x, w, tc.stride, tc.pad), 1e-4)
	}
}

// TestCol2ImIsAdjointOfIm2Col verifies <Im2Col(x), y> == <x, Col2Im(y)> — the
// defining property of adjoint operators, which both the transpose
// convolution forward pass and the convolution backward pass rely on.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, h, w, k, stride, pad := 3, 8, 6, 3, 2, 1
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(w, k, stride, pad)
	rows := c * k * k

	x := randomTensor(rng, c, h, w)
	y := randomTensor(rng, rows, oh*ow)

	colsX := New(rows, oh*ow)
	Im2Col(x.Data, c, h, w, k, k, stride, stride, pad, pad, colsX.Data, oh, ow)
	var lhs float64
	for i := range colsX.Data {
		lhs += float64(colsX.Data[i]) * float64(y.Data[i])
	}

	back := New(c, h, w)
	Col2Im(y.Data, c, h, w, k, k, stride, stride, pad, pad, back.Data, oh, ow)
	var rhs float64
	for i := range back.Data {
		rhs += float64(back.Data[i]) * float64(x.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestMaxPool2x2(t *testing.T) {
	x := New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out, arg := MaxPool2x2(x)
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
	grad := New(1, 1, 2, 2)
	grad.Fill(1)
	back := MaxPool2x2Backward(grad, arg, 4, 4)
	var nz int
	for i, v := range back.Data {
		if v != 0 {
			nz++
			if want := float32(1); v != want || (i != 5 && i != 7 && i != 13 && i != 15) {
				t.Fatalf("backward scatter wrong at %d: %v", i, v)
			}
		}
	}
	if nz != 4 {
		t.Fatalf("backward has %d nonzeros, want 4", nz)
	}
}

func TestAvgPool2x2(t *testing.T) {
	x := New(1, 1, 2, 2)
	copy(x.Data, []float32{1, 2, 3, 4})
	out := AvgPool2x2(x)
	if out.Data[0] != 2.5 {
		t.Fatalf("avg = %v, want 2.5", out.Data[0])
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomTensor(rng, 2, 3, 4, 4)
	b := randomTensor(rng, 2, 5, 4, 4)
	cat := ConcatChannels(a, b)
	if cat.Shape[1] != 8 {
		t.Fatalf("concat channels = %d", cat.Shape[1])
	}
	a2, b2 := SplitChannels(cat, 3)
	tensorsClose(t, a2, a, 0)
	tensorsClose(t, b2, b, 0)
}

func TestSoftmaxChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randomTensor(rng, 2, 4, 3, 3)
	p := SoftmaxChannels(x)
	n, c, h, w := 2, 4, 3, 3
	hw := h * w
	for img := 0; img < n; img++ {
		for pix := 0; pix < hw; pix++ {
			var s float64
			for ch := 0; ch < c; ch++ {
				v := float64(p.Data[(img*c+ch)*hw+pix])
				if v < 0 || v > 1 {
					t.Fatalf("probability out of range: %v", v)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-5 {
				t.Fatalf("softmax sums to %v", s)
			}
		}
	}
}

func TestSoftmaxIsShiftInvariant(t *testing.T) {
	f := func(a, b, c float32, shift float32) bool {
		clamp := func(v float32) float32 { return Clampf(v, -20, 20) }
		x := FromSlice([]float32{clamp(a), clamp(b), clamp(c)}, 1, 3, 1, 1)
		y := FromSlice([]float32{clamp(a) + clamp(shift), clamp(b) + clamp(shift), clamp(c) + clamp(shift)}, 1, 3, 1, 1)
		px := SoftmaxChannels(x)
		py := SoftmaxChannels(y)
		for i := range px.Data {
			if math.Abs(float64(px.Data[i]-py.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArgmaxChannels(t *testing.T) {
	x := New(1, 3, 1, 2)
	// pixel 0: channel 2 max; pixel 1: channel 0 max.
	x.Set(0.1, 0, 0, 0, 0)
	x.Set(0.9, 0, 0, 0, 1)
	x.Set(0.2, 0, 1, 0, 0)
	x.Set(0.1, 0, 1, 0, 1)
	x.Set(0.7, 0, 2, 0, 0)
	x.Set(0.2, 0, 2, 0, 1)
	got := ArgmaxChannels(x)
	if got[0] != 2 || got[1] != 0 {
		t.Fatalf("argmax = %v", got)
	}
}

func TestConvTransposeOutSize(t *testing.T) {
	// The U-Net decoder geometry: 3×3 kernel, stride 2, pad 1, outPad 1
	// exactly doubles the input size.
	for _, in := range []int{4, 8, 16, 128} {
		if got := ConvTransposeOutSize(in, 3, 2, 1, 1); got != 2*in {
			t.Fatalf("ConvTransposeOutSize(%d) = %d, want %d", in, got, 2*in)
		}
	}
	if got := ConvOutSize(256, 3, 1, 1); got != 256 {
		t.Fatalf("same-pad conv changes size: %d", got)
	}
}

func TestPropertyAddCommutes(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x1 := FromSlice(append([]float32(nil), a[:n]...), n)
		y1 := FromSlice(append([]float32(nil), b[:n]...), n)
		x2 := FromSlice(append([]float32(nil), b[:n]...), n)
		y2 := FromSlice(append([]float32(nil), a[:n]...), n)
		x1.AddInPlace(y1)
		x2.AddInPlace(y2)
		for i := 0; i < n; i++ {
			d1, d2 := x1.Data[i], x2.Data[i]
			if d1 != d2 && !(isNaN32(d1) && isNaN32(d2)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func isNaN32(f float32) bool { return f != f }

func TestApplyAndFill(t *testing.T) {
	x := New(10)
	x.Fill(3)
	x.Apply(func(v float32) float32 { return v * v })
	for _, v := range x.Data {
		if v != 9 {
			t.Fatalf("Apply result %v", v)
		}
	}
}

func TestShapePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := New(2, 2)
	b := New(3)
	mustPanic("AddInPlace", func() { a.AddInPlace(b) })
	mustPanic("FromSlice", func() { FromSlice([]float32{1}, 2) })
	mustPanic("MatMul", func() { MatMul(New(2, 3), New(4, 2)) })
	mustPanic("At", func() { a.At(5, 0) })
}
