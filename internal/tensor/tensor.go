// Package tensor implements dense float32 tensors in NCHW layout together
// with the linear-algebra and convolution-lowering kernels (matmul, im2col,
// col2im, pooling) that the neural-network layers in internal/nn are built
// on. All heavy kernels are parallelized with internal/par.
package tensor

import (
	"fmt"
	"math"

	"seneca/internal/par"
)

// Tensor is a dense float32 array with an explicit shape. Data is stored in
// row-major order with the last dimension contiguous; for feature maps the
// convention throughout the module is NCHW.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, Numel(shape))}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != Numel(shape) {
		panic(fmt.Sprintf("tensor: FromSlice length %d does not match shape %v (%d elements)", len(data), shape, Numel(shape)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Numel returns the number of elements implied by shape.
func Numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Len returns the number of elements in t.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape sharing the same backing
// data. The element count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Numel(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != u.Shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at the given multi-index. Intended for tests and
// small accesses; hot loops index Data directly.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Zero sets all elements of t to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Apply replaces every element x with f(x), in parallel.
func (t *Tensor) Apply(f func(float32) float32) {
	par.ForChunked(len(t.Data), func(lo, hi int) {
		d := t.Data
		for i := lo; i < hi; i++ {
			d[i] = f(d[i])
		}
	})
}

// AddInPlace computes t += u element-wise. Shapes must match.
func (t *Tensor) AddInPlace(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.Shape, u.Shape))
	}
	par.ForChunked(len(t.Data), func(lo, hi int) {
		a, b := t.Data, u.Data
		for i := lo; i < hi; i++ {
			a[i] += b[i]
		}
	})
}

// SubInPlace computes t -= u element-wise. Shapes must match.
func (t *Tensor) SubInPlace(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: SubInPlace shape mismatch %v vs %v", t.Shape, u.Shape))
	}
	par.ForChunked(len(t.Data), func(lo, hi int) {
		a, b := t.Data, u.Data
		for i := lo; i < hi; i++ {
			a[i] -= b[i]
		}
	})
}

// MulInPlace computes t *= u element-wise. Shapes must match.
func (t *Tensor) MulInPlace(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: MulInPlace shape mismatch %v vs %v", t.Shape, u.Shape))
	}
	par.ForChunked(len(t.Data), func(lo, hi int) {
		a, b := t.Data, u.Data
		for i := lo; i < hi; i++ {
			a[i] *= b[i]
		}
	})
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	par.ForChunked(len(t.Data), func(lo, hi int) {
		d := t.Data
		for i := lo; i < hi; i++ {
			d[i] *= s
		}
	})
}

// AXPY computes t += a*u element-wise.
func (t *Tensor) AXPY(a float32, u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: AXPY shape mismatch %v vs %v", t.Shape, u.Shape))
	}
	par.ForChunked(len(t.Data), func(lo, hi int) {
		x, y := t.Data, u.Data
		for i := lo; i < hi; i++ {
			x[i] += a * y[i]
		}
	})
}

// Sum returns the sum of all elements, accumulated in float64.
func (t *Tensor) Sum() float64 {
	return par.ReduceSum(len(t.Data), func(i int) float64 { return float64(t.Data[i]) })
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// MaxAbs returns the maximum absolute value in t (0 for empty tensors).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// MinMax returns the minimum and maximum element of t.
func (t *Tensor) MinMax() (min, max float32) {
	if len(t.Data) == 0 {
		return 0, 0
	}
	min, max = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// L2Norm returns the Euclidean norm of t.
func (t *Tensor) L2Norm() float64 {
	s := par.ReduceSum(len(t.Data), func(i int) float64 {
		v := float64(t.Data[i])
		return v * v
	})
	return math.Sqrt(s)
}

// String renders a compact description useful in error messages and logs.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.Shape)
}
