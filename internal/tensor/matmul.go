package tensor

import (
	"fmt"

	"seneca/internal/par"
)

// MatMul computes C = A·B for row-major matrices A (m×k) and B (k×n),
// returning a new m×n tensor. The kernel is parallelized over rows of A and
// uses an ikj loop order so the inner loop streams both B and C rows, which
// is the cache-friendly form for row-major data.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v × %v", a.Shape, b.Shape))
	}
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A·B into an existing m×n tensor c, overwriting it.
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	// Four rows of B per pass: one read-modify-write of the C row carries
	// four multiply-adds, which is what bounds this axpy form. Each C
	// element's accumulation order is a fixed function of (i, j) alone, so
	// results are identical at every worker count.
	par.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := cd[i*n : (i+1)*n]
			for j := range crow {
				crow[j] = 0
			}
			arow := ad[i*k : (i+1)*k]
			p := 0
			for ; p+3 < k; p += 4 {
				a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := bd[p*n : (p+1)*n]
				b1 := bd[(p+1)*n : (p+2)*n]
				b2 := bd[(p+2)*n : (p+3)*n]
				b3 := bd[(p+3)*n : (p+4)*n]
				b1 = b1[:len(b0)]
				b2 = b2[:len(b0)]
				b3 = b3[:len(b0)]
				cr := crow[:len(b0)]
				for j, bv := range b0 {
					cr[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulATInto computes C = Aᵀ·B where A is k×m and B is k×n, producing m×n.
// Used by convolution backward passes (gradient w.r.t. weights).
func MatMulATInto(c, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulATInto inner dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulATInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	// Parallelize over rows of C (columns of A). Each worker walks the k
	// dimension once, streaming B, four B rows per C-row pass (see
	// MatMulInto); per-element accumulation order is fixed, so results do
	// not depend on the worker count.
	par.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := cd[i*n : (i+1)*n]
			for j := range crow {
				crow[j] = 0
			}
			p := 0
			for ; p+3 < k; p += 4 {
				a0 := ad[p*m+i]
				a1 := ad[(p+1)*m+i]
				a2 := ad[(p+2)*m+i]
				a3 := ad[(p+3)*m+i]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := bd[p*n : (p+1)*n]
				b1 := bd[(p+1)*n : (p+2)*n]
				b2 := bd[(p+2)*n : (p+3)*n]
				b3 := bd[(p+3)*n : (p+4)*n]
				b1 = b1[:len(b0)]
				b2 = b2[:len(b0)]
				b3 = b3[:len(b0)]
				cr := crow[:len(b0)]
				for j, bv := range b0 {
					cr[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulBTInto computes C = A·Bᵀ where A is m×k and B is n×k, producing m×n.
// Used by convolution backward passes (gradient w.r.t. inputs).
func MatMulBTInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulBTInto inner dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulBTInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	// Dot-product form: a single accumulator serializes on FP add latency,
	// so split the reduction across four independent chains and combine
	// them in a fixed tree at the end. The combine order depends only on k,
	// never on the worker count, keeping results deterministic.
	par.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			crow := cd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				brow = brow[:len(arow)]
				var s0, s1, s2, s3 float32
				p := 0
				for ; p+3 < len(arow); p += 4 {
					s0 += arow[p] * brow[p]
					s1 += arow[p+1] * brow[p+1]
					s2 += arow[p+2] * brow[p+2]
					s3 += arow[p+3] * brow[p+3]
				}
				var t float32
				for ; p < len(arow); p++ {
					t += arow[p] * brow[p]
				}
				crow[j] = ((s0 + s1) + (s2 + s3)) + t
			}
		}
	})
}
