package tensor

import (
	"fmt"

	"seneca/internal/par"
)

// MatMul computes C = A·B for row-major matrices A (m×k) and B (k×n),
// returning a new m×n tensor. The kernel is parallelized over rows of A and
// uses an ikj loop order so the inner loop streams both B and C rows, which
// is the cache-friendly form for row-major data.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v × %v", a.Shape, b.Shape))
	}
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A·B into an existing m×n tensor c, overwriting it.
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	par.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := cd[i*n : (i+1)*n]
			for j := range crow {
				crow[j] = 0
			}
			arow := ad[i*k : (i+1)*k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulATInto computes C = Aᵀ·B where A is k×m and B is k×n, producing m×n.
// Used by convolution backward passes (gradient w.r.t. weights).
func MatMulATInto(c, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulATInto inner dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulATInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	// Parallelize over rows of C (columns of A). Each worker walks the k
	// dimension once, streaming B.
	par.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := cd[i*n : (i+1)*n]
			for j := range crow {
				crow[j] = 0
			}
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulBTInto computes C = A·Bᵀ where A is m×k and B is n×k, producing m×n.
// Used by convolution backward passes (gradient w.r.t. inputs).
func MatMulBTInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulBTInto inner dimension mismatch %v vs %v", a.Shape, b.Shape))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulBTInto output shape %v, want [%d %d]", c.Shape, m, n))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	par.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			crow := cd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				crow[j] = s
			}
		}
	})
}
