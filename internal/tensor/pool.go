package tensor

import (
	"fmt"

	"seneca/internal/par"
)

// MaxPool2x2 applies 2×2 max pooling with stride 2 to an NCHW tensor whose
// spatial dimensions are even. It returns the pooled tensor and the argmax
// index (into the input's H*W plane) chosen for every output element, which
// the backward pass uses to route gradients.
func MaxPool2x2(x *Tensor) (*Tensor, []int32) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("tensor: MaxPool2x2 requires even spatial dims, got %v", x.Shape))
	}
	oh, ow := h/2, w/2
	out := New(n, c, oh, ow)
	arg := make([]int32, n*c*oh*ow)
	planes := n * c
	par.For(planes, func(p int) {
		src := x.Data[p*h*w : (p+1)*h*w]
		dst := out.Data[p*oh*ow : (p+1)*oh*ow]
		adst := arg[p*oh*ow : (p+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				iy, ix := oy*2, ox*2
				best := src[iy*w+ix]
				bestIdx := int32(iy*w + ix)
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (iy+dy)*w + ix + dx
						if src[idx] > best {
							best = src[idx]
							bestIdx = int32(idx)
						}
					}
				}
				dst[oy*ow+ox] = best
				adst[oy*ow+ox] = bestIdx
			}
		}
	})
	return out, arg
}

// MaxPool2x2Backward scatters the pooled gradient grad (N,C,H/2,W/2) back to
// the input shape (N,C,H,W) using the argmax indices from MaxPool2x2.
func MaxPool2x2Backward(grad *Tensor, arg []int32, h, w int) *Tensor {
	n, c, oh, ow := grad.Shape[0], grad.Shape[1], grad.Shape[2], grad.Shape[3]
	out := New(n, c, h, w)
	planes := n * c
	par.For(planes, func(p int) {
		gsrc := grad.Data[p*oh*ow : (p+1)*oh*ow]
		asrc := arg[p*oh*ow : (p+1)*oh*ow]
		dst := out.Data[p*h*w : (p+1)*h*w]
		for i, g := range gsrc {
			dst[asrc[i]] += g
		}
	})
	return out
}

// AvgPool2x2 applies 2×2 average pooling with stride 2; used by ablation
// experiments comparing pooling choices.
func AvgPool2x2(x *Tensor) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("tensor: AvgPool2x2 requires even spatial dims, got %v", x.Shape))
	}
	oh, ow := h/2, w/2
	out := New(n, c, oh, ow)
	planes := n * c
	par.For(planes, func(p int) {
		src := x.Data[p*h*w : (p+1)*h*w]
		dst := out.Data[p*oh*ow : (p+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				iy, ix := oy*2, ox*2
				s := src[iy*w+ix] + src[iy*w+ix+1] + src[(iy+1)*w+ix] + src[(iy+1)*w+ix+1]
				dst[oy*ow+ox] = s * 0.25
			}
		}
	})
	return out
}

// ConcatChannels concatenates two NCHW tensors along the channel dimension.
// Batch and spatial dimensions must match.
func ConcatChannels(a, b *Tensor) *Tensor {
	if a.Shape[0] != b.Shape[0] || a.Shape[2] != b.Shape[2] || a.Shape[3] != b.Shape[3] {
		panic(fmt.Sprintf("tensor: ConcatChannels shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	n, ca, cb := a.Shape[0], a.Shape[1], b.Shape[1]
	h, w := a.Shape[2], a.Shape[3]
	out := New(n, ca+cb, h, w)
	hw := h * w
	par.For(n, func(i int) {
		copy(out.Data[i*(ca+cb)*hw:], a.Data[i*ca*hw:(i+1)*ca*hw])
		copy(out.Data[i*(ca+cb)*hw+ca*hw:], b.Data[i*cb*hw:(i+1)*cb*hw])
	})
	return out
}

// SplitChannels is the inverse of ConcatChannels: it splits an NCHW tensor
// into the first ca channels and the remaining channels.
func SplitChannels(x *Tensor, ca int) (*Tensor, *Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ca <= 0 || ca >= c {
		panic(fmt.Sprintf("tensor: SplitChannels split %d out of range for %d channels", ca, c))
	}
	cb := c - ca
	a := New(n, ca, h, w)
	b := New(n, cb, h, w)
	hw := h * w
	par.For(n, func(i int) {
		copy(a.Data[i*ca*hw:(i+1)*ca*hw], x.Data[i*c*hw:i*c*hw+ca*hw])
		copy(b.Data[i*cb*hw:(i+1)*cb*hw], x.Data[i*c*hw+ca*hw:(i+1)*c*hw])
	})
	return a, b
}

// SoftmaxChannels applies a numerically-stable softmax across the channel
// dimension of an NCHW tensor, producing per-pixel class probabilities.
func SoftmaxChannels(x *Tensor) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c, h, w)
	hw := h * w
	par.For(n*hw, func(j int) {
		img := j / hw
		pix := j % hw
		base := img * c * hw
		// Max for stability.
		m := x.Data[base+pix]
		for ch := 1; ch < c; ch++ {
			v := x.Data[base+ch*hw+pix]
			if v > m {
				m = v
			}
		}
		var sum float32
		for ch := 0; ch < c; ch++ {
			e := expf(x.Data[base+ch*hw+pix] - m)
			out.Data[base+ch*hw+pix] = e
			sum += e
		}
		inv := 1 / sum
		for ch := 0; ch < c; ch++ {
			out.Data[base+ch*hw+pix] *= inv
		}
	})
	return out
}

// ArgmaxChannels returns, for every pixel of an NCHW tensor, the index of
// the maximum channel — the predicted class map, shaped [N, H*W].
func ArgmaxChannels(x *Tensor) []uint8 {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	out := make([]uint8, n*hw)
	par.For(n*hw, func(j int) {
		img := j / hw
		pix := j % hw
		base := img * c * hw
		best := x.Data[base+pix]
		bi := 0
		for ch := 1; ch < c; ch++ {
			v := x.Data[base+ch*hw+pix]
			if v > best {
				best = v
				bi = ch
			}
		}
		out[j] = uint8(bi)
	})
	return out
}
