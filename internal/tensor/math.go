package tensor

import "math"

// expf is float32 exp; a thin wrapper so hot loops avoid repeating the
// float64 conversions inline.
func expf(x float32) float32 { return float32(math.Exp(float64(x))) }

// Expf exposes float32 exp for sibling packages that operate on tensor data.
func Expf(x float32) float32 { return expf(x) }

// Sqrtf is float32 sqrt.
func Sqrtf(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// Powf is float32 pow.
func Powf(x, y float32) float32 { return float32(math.Pow(float64(x), float64(y))) }

// Clampf limits v to [lo, hi].
func Clampf(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
