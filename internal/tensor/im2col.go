package tensor

import "seneca/internal/par"

// ConvOutSize returns the spatial output size of a convolution with the
// given input size, kernel, stride and padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// ConvTransposeOutSize returns the spatial output size of a transpose
// convolution (a.k.a. fractionally-strided convolution) with the given
// parameters. outPad resolves the output-size ambiguity of strided
// convolutions; outPad=stride-1 with pad=(kernel-1)/2 yields exact
// upsampling by the stride factor, which is the U-Net decoder convention.
func ConvTransposeOutSize(in, kernel, stride, pad, outPad int) int {
	return (in-1)*stride - 2*pad + kernel + outPad
}

// Im2Col lowers a single image src with C channels of H×W pixels into the
// column matrix dst of shape [C*KH*KW, OH*OW], where each column holds the
// receptive field of one output pixel. Out-of-bounds (padding) positions
// contribute zeros. dst must have length C*KH*KW*OH*OW.
//
// The row index is (c*KH+kh)*KW+kw and the column index is oh*OW+ow, so the
// matrix multiplies directly against weights reshaped to [Cout, C*KH*KW].
func Im2Col(src []float32, c, h, w, kh, kw, sh, sw, ph, pw int, dst []float32, oh, ow int) {
	rows := c * kh * kw
	if len(dst) != rows*oh*ow {
		panic("tensor: Im2Col destination has wrong length")
	}
	par.ForChunked(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ci := r / (kh * kw)
			rem := r % (kh * kw)
			ky := rem / kw
			kx := rem % kw
			plane := src[ci*h*w : (ci+1)*h*w]
			drow := dst[r*oh*ow : (r+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				iy := oy*sh - ph + ky
				base := oy * ow
				if iy < 0 || iy >= h {
					for ox := 0; ox < ow; ox++ {
						drow[base+ox] = 0
					}
					continue
				}
				srow := plane[iy*w : (iy+1)*w]
				for ox := 0; ox < ow; ox++ {
					ix := ox*sw - pw + kx
					if ix < 0 || ix >= w {
						drow[base+ox] = 0
					} else {
						drow[base+ox] = srow[ix]
					}
				}
			}
		}
	})
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) the column
// matrix cols of shape [C*KH*KW, OH*OW] back into the image dst with C
// channels of H×W pixels. dst is overwritten (zeroed first). Positions that
// fell in padding are discarded.
func Col2Im(cols []float32, c, h, w, kh, kw, sh, sw, ph, pw int, dst []float32, oh, ow int) {
	if len(dst) != c*h*w {
		panic("tensor: Col2Im destination has wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	// Parallelize over channels: every kernel row of a channel scatters only
	// into that channel's plane, so channel-level parallelism is race-free.
	par.For(c, func(ci int) {
		plane := dst[ci*h*w : (ci+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				r := (ci*kh+ky)*kw + kx
				crow := cols[r*oh*ow : (r+1)*oh*ow]
				for oy := 0; oy < oh; oy++ {
					iy := oy*sh - ph + ky
					if iy < 0 || iy >= h {
						continue
					}
					base := oy * ow
					prow := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*sw - pw + kx
						if ix < 0 || ix >= w {
							continue
						}
						prow[ix] += crow[base+ox]
					}
				}
			}
		}
	})
}
