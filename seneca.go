// Package seneca is the public API of SENECA-Go, a from-scratch Go
// reproduction of "On How to Push Efficient Medical Semantic Segmentation
// to the Edge: the SENECA approach" (Berzoini, D'Arnese, Conficconi —
// IPDPSW 2022).
//
// The workflow mirrors the paper's Figure 1:
//
//	A  data preparation      GeneratePhantomCohort / BuildDataset
//	B  model definition      TableII / NewModel
//	C  FP32 training         Train (weighted Focal Tversky loss)
//	D  INT8 quantization     RunPipeline / Deploy (PTQ with a curated
//	                         calibration set; FFQ and QAT available)
//	E  compile + deploy      the compiled Program runs on the simulated
//	                         dual-core DPUCZDX8G-B4096 via NewRunner
//
// Quick start:
//
//	vols := seneca.GeneratePhantomCohort(10, seneca.PhantomOptions{
//		Size: 128, Slices: 20, Seed: 1, NoiseSigma: 12})
//	ds := seneca.BuildDataset(vols, 64)
//	train, _, test := ds.Split(0.8, 0, 1)
//	cfg, _ := seneca.ConfigByName("1M")
//	art, err := seneca.RunPipeline(train, seneca.DefaultPipelineConfig(cfg))
//	...
//	runner := seneca.NewRunner(seneca.NewZCU104(), art.Program, 4)
//	masks, result, err := runner.Run(test.Images(indices), 1)
//
// Every table and figure of the paper can be regenerated through the
// Experiments entry points (see also cmd/seneca-bench and bench_test.go).
package seneca

import (
	"io"
	"time"

	"seneca/internal/backend"
	"seneca/internal/cluster"
	"seneca/internal/core"
	"seneca/internal/ctorg"
	"seneca/internal/dpu"
	"seneca/internal/experiments"
	"seneca/internal/fault"
	"seneca/internal/gpusim"
	"seneca/internal/graph"
	"seneca/internal/metrics"
	"seneca/internal/mpq"
	"seneca/internal/nifti"
	"seneca/internal/obs"
	"seneca/internal/phantom"
	"seneca/internal/serve"
	"seneca/internal/study"
	"seneca/internal/tensor"
	"seneca/internal/unet"
	"seneca/internal/vart"
	"seneca/internal/xmodel"
)

// Version identifies the library release.
const Version = "1.0.0"

// Re-exported core types. Aliases keep the full method sets of the
// underlying implementations available to importers.
type (
	// ModelConfig selects a U-Net architecture (paper Table II).
	ModelConfig = unet.Config
	// Model is a trainable FP32 U-Net.
	Model = unet.Model
	// Dataset is a set of preprocessed CT slices with ground truth.
	Dataset = ctorg.Dataset
	// PhantomOptions controls synthetic CT-ORG cohort generation.
	PhantomOptions = phantom.Options
	// PhantomVolume is one synthetic patient (CT + labels, NIfTI-backed).
	PhantomVolume = phantom.Volume
	// TrainConfig controls FP32 training (Figure 1-C).
	TrainConfig = core.TrainConfig
	// PipelineConfig controls the full train→quantize→compile workflow.
	PipelineConfig = core.PipelineConfig
	// Artifacts bundles the products of the workflow.
	Artifacts = core.Artifacts
	// Program is a compiled xmodel executable on the DPU.
	Program = xmodel.Program
	// DPU is the simulated ZCU104 accelerator.
	DPU = dpu.Device
	// GPU is the simulated RTX 2060 Mobile baseline.
	GPU = gpusim.Device
	// Runner is the VART-like asynchronous inference runtime.
	Runner = vart.Runner
	// RunResult reports throughput, power and energy efficiency (Eq. 3).
	RunResult = vart.Result
	// Confusion accumulates segmentation metrics (Eq. 4–6).
	Confusion = metrics.Confusion
	// Summary is a mean±std pair as reported in Tables IV–V.
	Summary = metrics.Summary
	// ExperimentScale selects fast or paper-scale experiment geometry.
	ExperimentScale = experiments.Scale
	// Experiments is the per-table/per-figure harness environment.
	Experiments = experiments.Env
	// InferenceServer is the online serving tier: bounded admission queue,
	// dynamic micro-batching over a pool of Runners, HTTP front end.
	InferenceServer = serve.Server
	// ServeConfig tunes the serving tier (queue depth, batch window,
	// runner pool, per-request deadline).
	ServeConfig = serve.Config
	// ServeStats is the GET /statz snapshot (queue, latency quantiles,
	// batch occupancy, simulated deployment FPS/W).
	ServeStats = serve.Stats
	// LoadPoint is one row of a closed-loop serving load sweep.
	LoadPoint = serve.LoadPoint
	// Backend is one execution substrate for a compiled program (dpu-sim,
	// cpu-int8, gpu-sim): bit-accurate INT8 masks plus a first-order
	// latency/energy cost model (internal/backend).
	Backend = backend.Backend
	// BackendCost is a backend's predicted latency and energy for one
	// micro-batch — what the serving tier's router compares.
	BackendCost = backend.Cost
	// BackendOptions tunes backend construction (threads, device-model
	// overrides).
	BackendOptions = backend.Options
	// BackendRouterConfig is the placement policy of the heterogeneous
	// pool: a per-batch latency SLO and a joules-per-frame energy budget.
	BackendRouterConfig = backend.RouterConfig
	// BackendStats is one pool slot's occupancy row inside ServeStats
	// (queue depth, in-flight batches/frames, simulated FPS and FPS/W).
	BackendStats = serve.BackendStats
	// MetricsRegistry collects counters, gauges and histograms and renders
	// them in Prometheus text exposition format (internal/obs).
	MetricsRegistry = obs.Registry
	// MetricLabel is one name=value label pair on a metric series.
	MetricLabel = obs.Label
	// NIfTIVolume is an in-memory NIfTI-1 volume (internal/nifti).
	NIfTIVolume = nifti.Volume
	// StudyService is the asynchronous whole-volume segmentation tier:
	// durable job store, staged executor with retry and resume, 3D
	// post-processing and volumetric reporting (internal/study).
	StudyService = study.Service
	// StudyConfig tunes the study service (store dir, worker pool, retry
	// budget, queue depth).
	StudyConfig = study.Config
	// StudyOptions are the per-job submission knobs.
	StudyOptions = study.Options
	// StudyJob is one durable volume-segmentation job record.
	StudyJob = study.Job
	// VolumeReport is a job's volumetric summary (per-organ mL and Dice).
	VolumeReport = study.Report
	// OrganReport is one organ's row of a VolumeReport.
	OrganReport = study.OrganReport
	// Fault programs one named injection point for chaos testing (see
	// internal/fault and the README's fault-point table).
	Fault = fault.Fault
	// FaultRegistry is a set of named, seeded fault-injection points.
	FaultRegistry = fault.Registry
	// ServerHealth is the self-healing snapshot of the serving tier's
	// runner pool (breaker states, evictions, redispatches).
	ServerHealth = serve.Health
	// Cluster is the sharded serving fleet: a front-door router over
	// in-process replicas with pluggable placement, two-tier priority
	// admission, queue-driven autoscaling, per-node health ejection and
	// load shedding (internal/cluster).
	Cluster = cluster.Cluster
	// ClusterConfig tunes the fleet (node bounds, placement policy, water
	// marks, eject thresholds).
	ClusterConfig = cluster.Config
	// ClusterStats is the fleet's GET /statz snapshot.
	ClusterStats = cluster.Stats
	// ClusterHealth is the fleet's GET /healthz summary (ok / degraded /
	// draining / unavailable).
	ClusterHealth = cluster.Health
	// RequestTier is a request's admission priority on the cluster
	// (TierInteractive preempts TierBatch).
	RequestTier = cluster.Tier
	// OpenLoopConfig drives one open-loop load run (Poisson, diurnal or
	// flash-crowd arrivals).
	OpenLoopConfig = serve.OpenLoopConfig
	// OpenLoopReport summarizes an open-loop run: goodput, shed rate and
	// p50/p99/p999 latency from histogram buckets.
	OpenLoopReport = serve.OpenLoopReport
	// Graph is an exported FP32 computation graph ((*Model).Export's
	// result) — the input to quantization, pruning and the
	// mixed-precision search.
	Graph = graph.Graph
	// Tensor is the NCHW float32 tensor every pipeline stage exchanges
	// (Dataset.Images returns calibration batches of these).
	Tensor = tensor.Tensor
	// MPQOptions tunes the mixed-precision search (Dice floor, pruning
	// fraction, candidate bitwidths, device model).
	MPQOptions = mpq.Options
	// MPQFrontier is a search result: every evaluated variant with the
	// Pareto-optimal ones marked, plus the sensitivity table.
	MPQFrontier = mpq.Frontier
	// MPQVariant is one named point of the mixed-precision search space
	// with its compiled program and measured accuracy/performance.
	MPQVariant = mpq.Variant
	// MPQRegistry holds a search's compiled variants by name; it satisfies
	// VariantProvider, so a VariantFront can serve it directly.
	MPQRegistry = mpq.Registry
	// MPQSensitivityTable is the per-layer bitwidth sensitivity analysis.
	MPQSensitivityTable = mpq.Table
	// VariantProvider supplies named compiled model variants to serving.
	VariantProvider = serve.VariantProvider
	// VariantTierConfig maps request tiers (X-Seneca-Tier) onto variants.
	VariantTierConfig = serve.TierConfig
	// VariantFront serves a whole variant registry behind one HTTP
	// surface: one micro-batching server per variant, tier-routed.
	VariantFront = serve.VariantFront
	// BrownoutConfig tunes the VariantFront's overload brownout
	// controller: a degradation ladder of variant names plus the queue
	// occupancy / p99 hysteresis that walks it.
	BrownoutConfig = serve.BrownoutConfig
	// QuantileDelay is one step of a percentile-shaped slow-node fault
	// program ("slow=p99:500ms"): requests above quantile Q stall Delay.
	QuantileDelay = fault.QuantileDelay
)

// ErrExpiredInQueue marks a request whose deadline lapsed while it waited
// in the serving queue or at batch dispatch — it never reached a backend.
// Unwraps to both this sentinel and the underlying context error.
var ErrExpiredInQueue = serve.ErrExpiredInQueue

// DeadlineHeader is the request header that propagates a client deadline
// budget (milliseconds) into the serving tier: X-Seneca-Deadline-Ms.
const DeadlineHeader = serve.DeadlineHeader

// Cluster admission tiers.
const (
	TierInteractive = cluster.TierInteractive
	TierBatch       = cluster.TierBatch
)

// Cluster placement policies.
const (
	PlacementLeastLoaded = cluster.PolicyLeastLoaded
	PlacementHash        = cluster.PolicyHash
)

// Calibration and quantization mode constants.
const (
	CalibRandom = core.CalibRandom
	CalibManual = core.CalibManual
	QuantPTQ    = core.QuantPTQ
	QuantFFQ    = core.QuantFFQ
	QuantQAT    = core.QuantQAT
)

// TableII returns the five model configurations evaluated in the paper.
func TableII() []ModelConfig { return unet.TableII() }

// ConfigByName resolves "1M", "2M", "4M", "8M" or "16M".
func ConfigByName(name string) (ModelConfig, error) { return unet.ConfigByName(name) }

// NewModel builds a U-Net with deterministic initialization.
func NewModel(cfg ModelConfig) *Model { return unet.New(cfg) }

// LoadModel reads a checkpoint written by (*Model).SaveFile.
func LoadModel(path string) (*Model, error) { return unet.LoadFile(path) }

// GeneratePhantomCohort builds n synthetic CT-ORG-like patients.
func GeneratePhantomCohort(n int, opt PhantomOptions) []*PhantomVolume {
	return phantom.GenerateDataset(n, opt)
}

// BuildDataset preprocesses volumes to size×size training slices (paper
// Section III-A pipeline: downsample, contrast saturation, [-1,1] rescale).
func BuildDataset(vols []*PhantomVolume, size int) *Dataset { return ctorg.Build(vols, size) }

// DefaultTrainConfig returns the fast-mode training settings.
func DefaultTrainConfig() TrainConfig { return core.DefaultTrainConfig() }

// DefaultPipelineConfig returns the paper's deployed workflow configuration
// for a model.
func DefaultPipelineConfig(cfg ModelConfig) PipelineConfig { return core.DefaultPipelineConfig(cfg) }

// Train fits a configuration on a dataset (Figure 1-C).
func Train(cfg ModelConfig, train *Dataset, tc TrainConfig) (*Model, core.TrainReport, error) {
	return core.Train(cfg, train, tc)
}

// RunPipeline executes the complete workflow: train, calibrate, quantize,
// compile (Figure 1 A–E).
func RunPipeline(train *Dataset, cfg PipelineConfig) (*Artifacts, error) {
	return core.RunPipeline(train, cfg)
}

// Deploy quantizes and compiles an already-trained model (Figure 1 D–E).
func Deploy(m *Model, train *Dataset, cfg PipelineConfig) (*Artifacts, error) {
	return core.Deploy(m, train, cfg, core.TrainReport{})
}

// NewZCU104 returns the paper's edge device: a dual-core DPUCZDX8G-B4096 on
// the ZCU104 evaluation board.
func NewZCU104() *DPU { return dpu.New(dpu.ZCU104B4096()) }

// NewRTX2060Mobile returns the paper's GPU baseline device model.
func NewRTX2060Mobile() *GPU { return gpusim.New(gpusim.RTX2060Mobile()) }

// NewRunner constructs the asynchronous inference runtime with the given
// thread count (the paper deploys 4).
func NewRunner(dev *DPU, prog *Program, threads int) *Runner { return vart.New(dev, prog, threads) }

// BackendKinds lists the registered execution backends ("cpu-int8",
// "dpu-sim", "gpu-sim"), sorted.
func BackendKinds() []string { return backend.Kinds() }

// NewBackend builds one execution backend of the given kind over a device
// and a compiled program. ServeConfig.Backends composes whole pools of
// these by spec, e.g. "dpu-sim:2,cpu-int8,gpu-sim".
func NewBackend(kind string, dev *DPU, prog *Program, opt BackendOptions) (Backend, error) {
	return backend.New(kind, dev, prog, opt)
}

// NewServer stands up the online inference service over a device and a
// compiled program and starts its micro-batching loop; release it with
// Shutdown. Serve its Handler() with net/http (see cmd/seneca-serve).
func NewServer(dev *DPU, prog *Program, cfg ServeConfig) (*InferenceServer, error) {
	return serve.New(dev, prog, cfg)
}

// NewStudyService opens (or reopens, resuming incomplete jobs) the durable
// volume-job store at cfg.Dir and starts the staged whole-volume pipeline
// over an inference server. Mount its Routes on the same mux as the
// server's Handler to expose both tiers from one listener (see
// cmd/seneca-study).
func NewStudyService(srv *InferenceServer, cfg StudyConfig) (*StudyService, error) {
	return study.New(srv, cfg)
}

// SearchMixedPrecision runs the full mixed-precision quantization search
// on a trained FP32 graph: per-layer INT4/FP32 sensitivity analysis,
// greedy bitwidth composition (optionally on a filter-pruned topology)
// under a global-Dice floor, and Pareto marking over (Dice, FPS/W). The
// frontier's Registry() feeds NewVariantFront (see cmd/seneca-mpq).
func SearchMixedPrecision(g *Graph, calib []*Tensor, val *Dataset, opt MPQOptions) (*MPQFrontier, error) {
	return mpq.Search(g, calib, val, opt)
}

// AnalyzeSensitivity builds just the per-layer bitwidth sensitivity table
// (the first stage of SearchMixedPrecision), deterministically.
func AnalyzeSensitivity(g *Graph, calib []*Tensor, val *Dataset, opt MPQOptions) (*MPQSensitivityTable, error) {
	return mpq.Analyze(g, calib, val, opt)
}

// NewVariantFront serves every variant of a registry behind one HTTP
// surface with per-request tier routing: interactive tiers ride fast
// low-precision variants, batch tiers the accurate ones.
func NewVariantFront(dev *DPU, vp VariantProvider, tiers VariantTierConfig, cfg ServeConfig) (*VariantFront, error) {
	return serve.NewVariantFront(dev, vp, tiers, cfg)
}

// ReadNIfTI / WriteNIfTI move volumes between disk and memory; gzip is
// detected on read and selected by a .gz path suffix on write.
func ReadNIfTI(path string) (*NIfTIVolume, error)  { return nifti.ReadFile(path) }
func WriteNIfTI(path string, v *NIfTIVolume) error { return nifti.WriteFile(path, v) }

// SweepLoad drives a running inference server closed-loop at each
// concurrency level — the serving-side analog of Runner.SweepThreads.
func SweepLoad(baseURL string, body []byte, contentType string, concurrencies []int, perLevel int) ([]LoadPoint, error) {
	return serve.SweepLoad(baseURL, body, contentType, concurrencies, perLevel)
}

// NewCluster stands up a sharded serving fleet: factory provisions one
// fresh replica per call (the autoscaler and rolling restarts reuse it).
// Release with Shutdown; serve its Handler() with net/http (see
// cmd/seneca-cluster).
func NewCluster(factory func() (*InferenceServer, error), cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(factory, cfg)
}

// RunOpenLoop drives a running server or cluster front door with open-loop
// arrivals (the regime where queues actually grow) and reports goodput,
// shed rate and tail latency.
func RunOpenLoop(baseURL string, body []byte, contentType string, cfg OpenLoopConfig) (OpenLoopReport, error) {
	return serve.RunOpenLoop(baseURL, body, contentType, cfg)
}

// FormatOpenLoop renders open-loop reports as a fixed-width table.
func FormatOpenLoop(w io.Writer, reports []OpenLoopReport) { serve.FormatOpenLoop(w, reports) }

// EncodeServeInput serializes float32 values as the raw
// application/octet-stream body POST /v1/segment expects.
func EncodeServeInput(data []float32) []byte { return serve.EncodeInput(data) }

// FormatLoadSweep renders a load sweep as a fixed-width table.
func FormatLoadSweep(w io.Writer, points []LoadPoint) { serve.FormatSweep(w, points) }

// EvaluateFP32 measures the FP32 model on a dataset.
func EvaluateFP32(m *Model, ds *Dataset, batch int) *Confusion {
	return core.EvaluateFP32(m, ds, batch)
}

// EvaluateINT8 measures the compiled INT8 program (bit-accurate) on a
// dataset.
func EvaluateINT8(p *Program, ds *Dataset) (*Confusion, error) { return core.EvaluateINT8(p, ds) }

// LoadProgram reads a compiled .xmodel file.
func LoadProgram(path string) (*Program, error) { return xmodel.ReadFile(path) }

// FastScale returns the CI/bench experiment scale; PaperScale the full
// Section IV geometry.
func FastScale() ExperimentScale { return experiments.FastScale() }

// PaperScale returns the full replication geometry.
func PaperScale() ExperimentScale { return experiments.PaperScale() }

// TinyScale returns the seconds-scale harness used by unit tests.
func TinyScale() ExperimentScale { return experiments.TinyScale() }

// NewExperiments builds the experiment environment (datasets + device
// models) at the given scale. Progress lines go to log (nil silences).
func NewExperiments(s ExperimentScale, log io.Writer) *Experiments {
	return experiments.NewEnv(s, log)
}

// Metrics returns the process-wide metrics registry. Pipeline stage timers
// (train, calibrate, quantize, compile, simulate) land here; pass it as
// ServeConfig.Metrics / TrainConfig.Metrics to collect everything in one
// scrape. Expose it over HTTP with Metrics().Handler().
func Metrics() *MetricsRegistry { return obs.Default }

// NewMetricsRegistry returns an empty private registry, for callers that
// want per-run isolation instead of the shared default.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// EnableFault programs one injection point on the process-wide fault
// registry (chaos testing: vart.run.error, study.blob.write, ...). Every
// injection increments seneca_fault_injected_total{point=...} on Metrics().
func EnableFault(point string, f Fault) { fault.Enable(point, f) }

// ApplyFaults programs the process-wide registry from a compact spec, e.g.
// "vart.run.error,p=0.05,count=10;nifti.read,p=0.01" (the cmd binaries'
// -faults flag syntax).
func ApplyFaults(spec string) error { return fault.Apply(spec) }

// SeedFaults reseeds the fault registry's RNG so probabilistic chaos runs
// replay deterministically.
func SeedFaults(seed int64) { fault.Seed(seed) }

// ResetFaults clears every programmed fault point.
func ResetFaults() { fault.Reset() }

// FaultsInjected reports how many times a point has fired.
func FaultsInjected(point string) int { return fault.Injected(point) }

// SlowTailFault builds a latency fault that stalls the slowest (1−q)
// fraction of hits at a point by d — "the p99 takes an extra 500ms" —
// for percentile-shaped slow-node chaos programs.
func SlowTailFault(q float64, d time.Duration) Fault { return fault.SlowTail(q, d) }
